package session

import (
	"encoding/json"
	"fmt"

	"querylearn/internal/core"
	"querylearn/internal/graph"
	"querylearn/internal/graphlearn"
)

// pathItem addresses a node pair on the wire by node names (stable across
// restarts, unlike interned indexes).
type pathItem struct {
	Src string `json:"src"`
	Dst string `json:"dst"`
}

// pathLearner adapts the graphlearn interactive session. The task's first
// positive example seeds the candidate space; further task examples are
// replayed as answers. The session's version space is pool-projected and
// sparse (see internal/graphlearn): memory is O(candidates · pool pairs) and
// creation runs one product BFS per distinct pool source, so graphs far
// beyond the old dense-bitset 4096-node ceiling are served. The effective
// pool shape and node cap come from the Limits the caller resolved (daemon
// flags, optionally tightened per request).
type pathLearner struct {
	decodeCache
	g    *graph.Graph
	sess *graphlearn.Session
}

func newPathLearner(src string, lim Limits) (*pathLearner, error) {
	task, err := core.ParsePathTask(src)
	if err != nil {
		return nil, err
	}
	seed := -1
	for i, ex := range task.Examples {
		if ex.Positive {
			seed = i
			break
		}
	}
	if seed < 0 {
		return nil, fmt.Errorf("session: path session needs at least one positive example as seed")
	}
	g := task.Graph
	if g.NumNodes() > lim.PathMaxNodes {
		return nil, fmt.Errorf("session: graph has %d nodes, above the %d-node session limit", g.NumNodes(), lim.PathMaxNodes)
	}
	pool := graphlearn.DefaultPool(g, lim.PathPoolMaxLen, lim.PathPoolLimit)
	// The task's own examples are probe-able pairs: intern them with the
	// pool so their candidate membership is evaluated in the same batched
	// pool-restricted pass, not one by one during replay below.
	probes := make([]graph.Pair, 0, len(task.Examples))
	for _, ex := range task.Examples {
		probes = append(probes, graph.Pair{Src: ex.Src, Dst: ex.Dst})
	}
	sess, err := graphlearn.NewSessionProbes(g,
		graph.Pair{Src: task.Examples[seed].Src, Dst: task.Examples[seed].Dst}, pool, probes)
	if err != nil {
		return nil, err
	}
	l := &pathLearner{g: g, sess: sess}
	for i, ex := range task.Examples {
		if i == seed {
			continue
		}
		if err := sess.Record(graph.Pair{Src: ex.Src, Dst: ex.Dst}, ex.Positive); err != nil {
			return nil, fmt.Errorf("session: replaying path task example %d: %w", i, err)
		}
	}
	return l, nil
}

// Model implements Learner.
func (l *pathLearner) Model() string { return "path" }

// Propose implements Learner: the first k informative node pairs in the
// session's deterministic pool order.
func (l *pathLearner) Propose(k int) ([]Question, error) {
	inf := l.sess.InformativePairs()
	if len(inf) == 0 {
		return nil, nil
	}
	qs := make([]Question, 0, clampBatch(k, len(inf)))
	for _, p := range inf[:clampBatch(k, len(inf))] {
		item, err := json.Marshal(pathItem{Src: l.g.Node(p.Src), Dst: l.g.Node(p.Dst)})
		if err != nil {
			return nil, err
		}
		qs = append(qs, Question{
			Model: "path",
			Item:  item,
			Prompt: fmt.Sprintf("should the query select the pair (%s, %s)?",
				l.g.Node(p.Src), l.g.Node(p.Dst)),
			Remaining: len(inf),
		})
	}
	return qs, nil
}

// resolve decodes an item and interns its node names.
func (l *pathLearner) resolve(raw json.RawMessage) (graph.Pair, error) {
	it, err := decodeItemCached[pathItem](&l.decodeCache, "path", raw)
	if err != nil {
		return graph.Pair{}, err
	}
	src, dst := l.g.NodeIndex(it.Src), l.g.NodeIndex(it.Dst)
	if src < 0 {
		return graph.Pair{}, fmt.Errorf("session: unknown node %q", it.Src)
	}
	if dst < 0 {
		return graph.Pair{}, fmt.Errorf("session: unknown node %q", it.Dst)
	}
	return graph.Pair{Src: src, Dst: dst}, nil
}

// Validate implements Learner.
func (l *pathLearner) Validate(raw json.RawMessage) error {
	_, err := l.resolve(raw)
	return err
}

// Record implements Learner.
func (l *pathLearner) Record(raw json.RawMessage, positive bool) error {
	p, err := l.resolve(raw)
	if err != nil {
		return err
	}
	if err := l.sess.Record(p, positive); err != nil {
		return err
	}
	l.sess.Questions++
	return nil
}

// Hypothesis implements Learner.
func (l *pathLearner) Hypothesis() (Hypothesis, error) {
	return Hypothesis{
		Model:     "path",
		Query:     l.sess.Result().String(),
		Converged: len(l.sess.InformativePairs()) == 0,
		Detail: map[string]string{
			"survivors": fmt.Sprint(len(l.sess.Candidates)),
			"pool":      fmt.Sprint(len(l.sess.Pool)),
			"questions": fmt.Sprint(l.sess.Questions),
		},
	}, nil
}
