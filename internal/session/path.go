package session

import (
	"encoding/json"
	"fmt"

	"querylearn/internal/core"
	"querylearn/internal/graph"
	"querylearn/internal/graphlearn"
	"querylearn/internal/plan"
)

// pathItem addresses a node pair on the wire by node names (stable across
// restarts, unlike interned indexes).
type pathItem struct {
	Src string `json:"src"`
	Dst string `json:"dst"`
}

// pathLearner adapts the graphlearn interactive session. The task's first
// positive example seeds the candidate space; further task examples are
// replayed as answers. The session's version space is pool-projected and
// sparse (see internal/graphlearn): memory is O(candidates · pool pairs) and
// creation runs one product BFS per distinct pool source, so graphs far
// beyond the old dense-bitset 4096-node ceiling are served. The effective
// pool shape and node cap come from the Limits the caller resolved (daemon
// flags, optionally tightened per request).
type pathLearner struct {
	decodeCache
	g    *graph.Graph
	sess *graphlearn.Session
}

func newPathLearner(src string, lim Limits) (*pathLearner, error) {
	task, err := core.ParsePathTask(src)
	if err != nil {
		return nil, err
	}
	seed := -1
	for i, ex := range task.Examples {
		if ex.Positive {
			seed = i
			break
		}
	}
	if seed < 0 {
		return nil, fmt.Errorf("session: path session needs at least one positive example as seed")
	}
	g := task.Graph
	if g.NumNodes() > lim.PathMaxNodes {
		return nil, fmt.Errorf("session: graph has %d nodes, above the %d-node session limit", g.NumNodes(), lim.PathMaxNodes)
	}
	pool := graphlearn.DefaultPool(g, lim.PathPoolMaxLen, lim.PathPoolLimit)
	// The task's examples are handed to the session with their labels:
	// they are interned with the pool (batched membership evaluation) AND
	// applied to the candidate space before the pool-wide pass, so a
	// candidate an example eliminates never pays a pool-sized evaluation.
	examples := make([]graphlearn.LabeledPair, 0, len(task.Examples))
	for i, ex := range task.Examples {
		if i == seed {
			continue
		}
		examples = append(examples, graphlearn.LabeledPair{
			Pair: graph.Pair{Src: ex.Src, Dst: ex.Dst}, Positive: ex.Positive})
	}
	sess, err := graphlearn.NewSessionExamples(g,
		graph.Pair{Src: task.Examples[seed].Src, Dst: task.Examples[seed].Dst}, pool, examples)
	if err != nil {
		return nil, fmt.Errorf("session: replaying path task examples: %w", err)
	}
	return &pathLearner{g: g, sess: sess}, nil
}

// PlanRecorder exposes the underlying session's planner recorder so the
// manager can fold planning work into the request trace.
func (l *pathLearner) PlanRecorder() *plan.Recorder { return l.sess.PlanRecorder() }

// Model implements Learner.
func (l *pathLearner) Model() string { return "path" }

// Propose implements Learner: the first k informative node pairs in the
// session's deterministic pool order. The scan materializes only the
// requested batch while still counting the total (the wire's Remaining
// field), and a collapsed version space skips the pool entirely.
func (l *pathLearner) Propose(k int) ([]Question, error) {
	lim := k
	if lim < 1 {
		lim = 1
	}
	inf, total := l.sess.InformativeScan(lim)
	if total == 0 {
		return nil, nil
	}
	qs := make([]Question, 0, clampBatch(k, total))
	for _, p := range inf[:clampBatch(k, total)] {
		item, err := json.Marshal(pathItem{Src: l.g.Node(p.Src), Dst: l.g.Node(p.Dst)})
		if err != nil {
			return nil, err
		}
		qs = append(qs, Question{
			Model: "path",
			Item:  item,
			Prompt: fmt.Sprintf("should the query select the pair (%s, %s)?",
				l.g.Node(p.Src), l.g.Node(p.Dst)),
			Remaining: total,
		})
	}
	return qs, nil
}

// resolve decodes an item and interns its node names.
func (l *pathLearner) resolve(raw json.RawMessage) (graph.Pair, error) {
	it, err := decodeItemCached[pathItem](&l.decodeCache, "path", raw)
	if err != nil {
		return graph.Pair{}, err
	}
	src, dst := l.g.NodeIndex(it.Src), l.g.NodeIndex(it.Dst)
	if src < 0 {
		return graph.Pair{}, fmt.Errorf("session: unknown node %q", it.Src)
	}
	if dst < 0 {
		return graph.Pair{}, fmt.Errorf("session: unknown node %q", it.Dst)
	}
	return graph.Pair{Src: src, Dst: dst}, nil
}

// Validate implements Learner.
func (l *pathLearner) Validate(raw json.RawMessage) error {
	_, err := l.resolve(raw)
	return err
}

// Record implements Learner.
func (l *pathLearner) Record(raw json.RawMessage, positive bool) error {
	p, err := l.resolve(raw)
	if err != nil {
		return err
	}
	if err := l.sess.Record(p, positive); err != nil {
		return err
	}
	l.sess.Questions++
	return nil
}

// Hypothesis implements Learner.
func (l *pathLearner) Hypothesis() (Hypothesis, error) {
	_, open := l.sess.InformativeScan(1) // convergence needs the count, not the pairs
	return Hypothesis{
		Model:     "path",
		Query:     l.sess.Result().String(),
		Converged: open == 0,
		Detail: map[string]string{
			"survivors": fmt.Sprint(len(l.sess.Candidates)),
			"pool":      fmt.Sprint(len(l.sess.Pool)),
			"questions": fmt.Sprint(l.sess.Questions),
		},
	}, nil
}
