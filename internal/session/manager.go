package session

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"querylearn/internal/obs"
	"querylearn/pkg/api"
)

// Wire types shared with pkg/api (see learner.go for the rationale).
type (
	// Answer is one label: the item a question encoded, and the verdict.
	Answer = api.Answer
	// Snapshot is the JSON-persistable state of a session mid-dialogue.
	Snapshot = api.Snapshot
	// Status is the session's lifecycle summary.
	Status = api.Status
	// AnswerResult reports what a batch of labels did to the session.
	AnswerResult = api.AnswerResult
)

// Sentinel errors the HTTP layer maps to status codes.
var (
	// ErrNotFound reports an unknown or already-evicted session id.
	ErrNotFound = errors.New("session not found")
	// ErrTooManySessions reports the MaxSessions cap.
	ErrTooManySessions = errors.New("session limit reached")
	// ErrBudgetExhausted reports a batch that would exceed the session's
	// crowd budget.
	ErrBudgetExhausted = errors.New("session budget exhausted")
	// ErrFailed reports an operation on a session whose answers became
	// inconsistent; the version space is no longer trustworthy.
	ErrFailed = errors.New("session failed")
	// ErrExists reports a Resume under an id that is still live.
	ErrExists = errors.New("session id already exists")
	// ErrJournal reports a mutation aborted because its write-ahead journal
	// append failed — a server-side durability fault, not a client error.
	ErrJournal = errors.New("session journal unavailable")
)

// Config tunes a Manager.
type Config struct {
	// Shards is the number of lock shards (default 16).
	Shards int
	// MaxSessions caps live sessions across all shards (0 = unlimited).
	MaxSessions int
	// TTL evicts sessions idle longer than this (0 = never). Eviction
	// happens on SweepExpired, which the daemon calls periodically.
	TTL time.Duration
	// CostPerHIT prices one submitted label, the crowd-marketplace dollar
	// cost of §3 (0 = free).
	CostPerHIT float64
	// Limits bounds per-session resources (zero fields = defaults). Create
	// requests may tighten them per session but never exceed them.
	Limits Limits
	// Clock overrides time.Now for TTL tests.
	Clock func() time.Time
	// NewID overrides fresh-session id minting (default: "s" plus 24 hex
	// chars of crypto/rand). The cluster layer installs a generator that
	// only mints ids owned by the local node on the consistent-hash ring, so
	// a create request never has to redirect. Must return distinct values;
	// collisions with live ids are re-minted.
	NewID func() string
	// Journal observes every state mutation (write-ahead). Nil keeps the
	// manager purely in-memory.
	Journal Journal
	// DisableInterning turns off the manager-wide item vocabulary (byte
	// canonicalization and the decode memo) — the pre-interning behavior,
	// kept as a rollback/measurement knob. Purely an optimization toggle;
	// sessions behave identically either way.
	DisableInterning bool
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 16
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	c.Limits = c.Limits.withDefaults()
	return c
}

// Manager hosts live learning sessions: a sharded map with per-session
// locking, so many dialogues progress concurrently while each learner sees
// strictly serialized answers.
type Manager struct {
	cfg    Config
	shards []*shard
	live   atomic.Int64
	// intern canonicalizes answer-item bytes across sessions (see
	// intern.go): the few distinct question items a dialogue labels are
	// stored once instead of once per answer per session.
	intern *itemInterner

	// compactMu freezes the event stream during journal compaction: every
	// mutation holds it for read around its commit, Compact holds it for
	// write while it snapshots all sessions and rewrites the log, so the
	// snapshot set is consistent with the journal cut point. Lock order is
	// compactMu → shard.mu → Session.mu → journal internals.
	compactMu sync.RWMutex

	// Counters for /metrics. The event counters are bumped on the commit
	// path; labels on the Answer path (per submitted HIT) and questions on
	// the Propose path (per informative item served).
	created   atomic.Int64
	resumed   atomic.Int64
	recovered atomic.Int64
	deleted   atomic.Int64
	expired   atomic.Int64
	labels    atomic.Int64
	questions atomic.Int64
	// heals counts journal probe recoveries (see StartJournalProbe).
	heals atomic.Int64
}

// commit is the single mutation event path: every state change in the
// Manager — create, resume, answers, delete, evict — is expressed as an
// Event and routed here, write-ahead. With a journal configured the event
// must append before the mutation proceeds; an append failure aborts it.
// Boot-time recovery replays with journal=false because the journal already
// contains the state being rebuilt. tr (nil-safe) attributes the append to
// the request's journal.append phase; a TracedJournal additionally breaks
// out its own internal phases (fsync wait) on the same trace.
func (m *Manager) commit(tr *obs.Trace, ev Event, journal bool) error {
	if journal && m.cfg.Journal != nil {
		done := tr.StartPhase("journal.append")
		var err error
		if tj, ok := m.cfg.Journal.(TracedJournal); ok && tr != nil {
			err = tj.AppendTraced(ev, tr)
		} else {
			err = m.cfg.Journal.Append(ev)
		}
		done()
		if err != nil {
			return fmt.Errorf("%w (%s event): %v", ErrJournal, ev.Kind, err)
		}
	}
	switch ev.Kind {
	case EventCreate:
		m.created.Add(1)
	case EventResume:
		if journal {
			m.resumed.Add(1)
		} else {
			m.recovered.Add(1)
		}
	case EventDelete:
		m.deleted.Add(1)
	case EventEvict:
		m.expired.Add(1)
	}
	return nil
}

type shard struct {
	mu sync.Mutex
	m  map[string]*Session
}

// NewManager builds a Manager with the given configuration.
func NewManager(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	m := &Manager{cfg: cfg, shards: make([]*shard, cfg.Shards)}
	if !cfg.DisableInterning {
		m.intern = newItemInterner()
	}
	for i := range m.shards {
		m.shards[i] = &shard{m: map[string]*Session{}}
	}
	return m
}

// attachCache hands a freshly built learner the manager-wide decode memo,
// so equal items across sessions decode once (see intern.go). Learners
// built standalone via New/NewLimited run uncached.
func (m *Manager) attachCache(l Learner) {
	if c, ok := l.(interface{ setDecodeCache(*itemInterner) }); ok {
		c.setDecodeCache(m.intern)
	}
}

func (m *Manager) shardFor(id string) *shard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return m.shards[h.Sum32()%uint32(len(m.shards))]
}

func newID() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("session: crypto/rand failed: %v", err))
	}
	return "s" + hex.EncodeToString(b[:])
}

// mintID mints a fresh session id, honoring Config.NewID.
func (m *Manager) mintID() string {
	if m.cfg.NewID != nil {
		return m.cfg.NewID()
	}
	return newID()
}

// Session is one live dialogue: a learner plus the bookkeeping that makes it
// servable — the answer log (for snapshots), crowd-cost accounting, and idle
// tracking for TTL eviction. All methods are safe for concurrent use.
type Session struct {
	mu sync.Mutex

	id      string
	model   string
	task    string
	learner Learner
	// limits records the EFFECTIVE session limits (path model only) for
	// snapshots and journal events, so a resume — even on a daemon with
	// different flag defaults — rebuilds the identical pool and version
	// space.
	limits  *api.PathLimits
	answers []Answer
	// answerKeys is the bounded window of recent answers Idempotency-Keys
	// (newest last); journaled with each batch and carried in snapshots, so
	// a keyed retry that lands after a crash or failover is recognized as a
	// replay instead of double-charging the batch.
	answerKeys []string
	hits       int
	maxCost    float64
	createdAt time.Time
	failed    error
	// evicted is set under mu when the session leaves the manager (TTL
	// sweep or DELETE), so an operation racing the eviction fails instead
	// of silently applying labels to an unreachable session.
	evicted bool

	mgr          *Manager
	costPerHIT   float64
	clock        func() time.Time
	lastActiveNS atomic.Int64
}

// CreateOptions are per-session knobs.
type CreateOptions struct {
	// MaxCost caps the crowd spend of this session in dollars (0 = no cap).
	MaxCost float64
	// Limits optionally tightens the manager's session limits for this
	// session (path model). Values above the manager's own limits are
	// rejected. The limits are persisted with the session's snapshot.
	Limits *api.PathLimits
}

// Limits reports the manager's effective (defaulted) session limits — what a
// create request may tighten but not exceed.
func (m *Manager) Limits() Limits { return m.cfg.Limits }

// Create parses the task, builds the model's learner, and registers a fresh
// session. The create event is journaled after the session id is final but
// before Create returns, so no acknowledged session can be lost to a crash.
func (m *Manager) Create(model, task string, opts CreateOptions) (*Session, error) {
	return m.CreateTraced(model, task, opts, nil)
}

// CreateTraced is Create with per-phase attribution onto tr (nil-safe).
func (m *Manager) CreateTraced(model, task string, opts CreateOptions, tr *obs.Trace) (*Session, error) {
	m.compactMu.RLock()
	defer m.compactMu.RUnlock()
	lim, err := m.cfg.Limits.Merge(opts.Limits, true)
	if err != nil {
		return nil, err
	}
	if err := m.reserve(); err != nil {
		return nil, err
	}
	buildDone := tr.StartPhase("learner.build")
	learner, err := NewLimited(model, task, lim)
	buildDone()
	if err != nil {
		m.live.Add(-1)
		return nil, err
	}
	drainPlan(learner, tr)
	m.attachCache(learner)
	s := m.newSession(m.mintID(), model, task, learner, opts.MaxCost)
	if model == "path" {
		// Stamp the EFFECTIVE limits, not the request's: a snapshot must
		// rebuild the identical pool even on a daemon with different flag
		// defaults.
		s.limits = lim.wire()
	}
	m.insert(s)
	ev := Event{
		Kind: EventCreate, ID: s.id, Model: model, Task: task,
		MaxCost: opts.MaxCost, Limits: s.limits, CreatedAt: s.createdAt,
	}
	if err := m.commit(tr, ev, true); err != nil {
		s.mu.Lock()
		m.finishRemoval(s)
		return nil, err
	}
	return s, nil
}

// finishRemoval is the one removal sequence every eviction path (Delete,
// TTL sweep, create/resume rollback) funnels through. The caller holds s.mu
// with s.evicted still false and has already journaled (or deliberately not
// journaled) the removal; finishRemoval marks the session evicted, releases
// s.mu, unlinks it from its shard if the same pointer is still registered,
// and frees its live slot. Marking evicted under the caller's lock before
// touching the shard makes removal exactly-once against racing paths, and
// releasing s.mu before taking shard.mu keeps the lock order acyclic.
func (m *Manager) finishRemoval(s *Session) {
	s.evicted = true
	s.mu.Unlock()
	sh := m.shardFor(s.id)
	sh.mu.Lock()
	if sh.m[s.id] == s {
		delete(sh.m, s.id)
	}
	sh.mu.Unlock()
	m.live.Add(-1)
}

func (m *Manager) reserve() error {
	if m.cfg.MaxSessions > 0 && m.live.Add(1) > int64(m.cfg.MaxSessions) {
		m.live.Add(-1)
		return ErrTooManySessions
	}
	if m.cfg.MaxSessions <= 0 {
		m.live.Add(1)
	}
	return nil
}

func (m *Manager) newSession(id, model, task string, learner Learner, maxCost float64) *Session {
	now := m.cfg.Clock()
	s := &Session{
		id: id, model: model, task: task, learner: learner,
		maxCost: maxCost, createdAt: now,
		mgr: m, costPerHIT: m.cfg.CostPerHIT, clock: m.cfg.Clock,
	}
	s.lastActiveNS.Store(now.UnixNano())
	return s
}

func (m *Manager) insert(s *Session) {
	for {
		sh := m.shardFor(s.id)
		sh.mu.Lock()
		if _, taken := sh.m[s.id]; !taken {
			sh.m[s.id] = s
			sh.mu.Unlock()
			return
		}
		sh.mu.Unlock()
		s.id = m.mintID() // astronomically unlikely collision
	}
}

// Get looks a live session up.
func (m *Manager) Get(id string) (*Session, error) {
	sh := m.shardFor(id)
	sh.mu.Lock()
	s := sh.m[id]
	sh.mu.Unlock()
	if s == nil {
		return nil, ErrNotFound
	}
	return s, nil
}

// Delete evicts a session. It returns ErrNotFound for an unknown id, or the
// journal error if the delete event could not be made durable (in which case
// the session stays live).
func (m *Manager) Delete(id string) error { return m.DeleteTraced(id, nil) }

// DeleteTraced is Delete with per-phase attribution onto tr (nil-safe).
func (m *Manager) DeleteTraced(id string, tr *obs.Trace) error {
	m.compactMu.RLock()
	defer m.compactMu.RUnlock()
	sh := m.shardFor(id)
	sh.mu.Lock()
	s, ok := sh.m[id]
	sh.mu.Unlock()
	if !ok {
		return ErrNotFound
	}
	// Journal under the session lock only: a synchronous fsync (always
	// mode) stalls this one session, not every session in the shard. The
	// evicted flag makes removal exactly-once against a racing sweep.
	lockDone := tr.StartPhase("session.lock")
	s.mu.Lock()
	lockDone()
	if s.evicted {
		s.mu.Unlock()
		return ErrNotFound
	}
	if err := m.commit(tr, Event{Kind: EventDelete, ID: id}, true); err != nil {
		s.mu.Unlock()
		return err
	}
	m.finishRemoval(s)
	return nil
}

// Len counts live sessions.
func (m *Manager) Len() int { return int(m.live.Load()) }

// SweepExpired evicts every session idle longer than the TTL and returns how
// many it removed. A no-op when the TTL is zero.
func (m *Manager) SweepExpired() int {
	if m.cfg.TTL <= 0 {
		return 0
	}
	m.compactMu.RLock()
	defer m.compactMu.RUnlock()
	deadline := m.cfg.Clock().Add(-m.cfg.TTL).UnixNano()
	removed := 0
	for _, sh := range m.shards {
		// Collect candidates under the shard lock, then evict each under
		// its own session lock only, so the journal fsync of one eviction
		// never stalls the whole shard.
		sh.mu.Lock()
		var victims []*Session
		for _, s := range sh.m {
			if s.lastActiveNS.Load() < deadline {
				victims = append(victims, s)
			}
		}
		sh.mu.Unlock()
		for _, s := range victims {
			// Re-check under the session lock: an in-flight operation
			// that already holds (or is acquiring) s.mu touches
			// lastActive, and a racing Delete sets evicted. Marking
			// evicted here makes any later operation on a stale pointer
			// fail instead of applying labels to an unreachable session.
			s.mu.Lock()
			if s.evicted || s.lastActiveNS.Load() >= deadline {
				s.mu.Unlock()
				continue
			}
			// A session that cannot journal its eviction stays live and
			// is retried on the next sweep.
			if err := m.commit(nil, Event{Kind: EventEvict, ID: s.id}, true); err != nil {
				s.mu.Unlock()
				continue
			}
			m.finishRemoval(s)
			removed++
		}
	}
	return removed
}

// Stats is the manager-level counter snapshot for /metrics.
type Stats struct {
	Live      int   `json:"live"`
	Created   int64 `json:"created"`
	Resumed   int64 `json:"resumed"`
	Recovered int64 `json:"recovered"`
	Deleted   int64 `json:"deleted"`
	Expired   int64 `json:"expired"`
	Labels    int64 `json:"labels"`
	Questions int64 `json:"questions"`
	// JournalHeals counts degraded-journal recoveries by the probe.
	JournalHeals int64 `json:"journal_heals,omitempty"`
	// InternItems/InternBytes describe the shared answer-item vocabulary
	// (see intern.go): distinct items retained once across all sessions.
	InternItems int   `json:"intern_items"`
	InternBytes int64 `json:"intern_bytes"`
}

// Stats snapshots the manager counters.
func (m *Manager) Stats() Stats {
	items, bytes := m.intern.stats()
	return Stats{
		Live:         m.Len(),
		Created:      m.created.Load(),
		Resumed:      m.resumed.Load(),
		Recovered:    m.recovered.Load(),
		Deleted:      m.deleted.Load(),
		Expired:      m.expired.Load(),
		Labels:       m.labels.Load(),
		Questions:    m.questions.Load(),
		JournalHeals: m.heals.Load(),
		InternItems:  items,
		InternBytes:  bytes,
	}
}

// List pages through the live sessions in ascending id order: up to limit
// statuses with ids strictly greater than after (the page token; "" starts
// from the beginning). The second result is the token of the next page, or
// "" when this page reaches the end. The listing is a point-in-time sample —
// sessions created or evicted mid-scan may or may not appear — which is the
// honest contract for a paginated view of a live, sharded map.
func (m *Manager) List(limit int, after string) ([]Status, string) {
	if limit < 1 {
		limit = 1
	}
	// Bounded selection: keep only the limit+1 smallest qualifying ids in a
	// sorted slice, so one page over N live sessions costs O(N·limit) in
	// the worst case instead of sorting all N — a full pagination sweep
	// stays linear-ish in N rather than quadratic.
	live := make([]*Session, 0, limit+1)
	for _, sh := range m.shards {
		sh.mu.Lock()
		for id, s := range sh.m {
			if id <= after {
				continue
			}
			if len(live) == limit+1 && id >= live[len(live)-1].id {
				continue
			}
			at := sort.Search(len(live), func(i int) bool { return live[i].id > id })
			live = append(live, nil)
			copy(live[at+1:], live[at:])
			live[at] = s
			if len(live) > limit+1 {
				live = live[:limit+1]
			}
		}
		sh.mu.Unlock()
	}
	next := ""
	if len(live) > limit {
		live = live[:limit]
		next = live[limit-1].id
	}
	statuses := make([]Status, len(live))
	for i, s := range live {
		statuses[i] = s.Status()
	}
	return statuses, next
}

// Resume rehydrates a snapshotted session under its original id.
func (m *Manager) Resume(snap Snapshot) (*Session, error) {
	return m.ResumeTraced(snap, nil)
}

// ResumeTraced is Resume with per-phase attribution onto tr (nil-safe).
func (m *Manager) ResumeTraced(snap Snapshot, tr *obs.Trace) (*Session, error) {
	m.compactMu.RLock()
	defer m.compactMu.RUnlock()
	return m.resume(snap, true, true, tr)
}

// Recover replays recovered snapshots back into live sessions through the
// same Resume machinery clients use — replay is the one way state is ever
// reconstructed. Journaling is disabled because the journal already contains
// the state being rebuilt, and the untrusted-snapshot cost check is relaxed
// to its structural part (crowd cost is rederived from the replayed HITs at
// the current rate, so a -cost-per-hit change cannot destroy sessions).
// Sessions that fail to replay (inconsistent answer logs, forged HITs) are
// skipped; Recover reports how many came back and joins the per-session
// errors.
func (m *Manager) Recover(snaps []Snapshot) (int, error) {
	m.compactMu.RLock()
	defer m.compactMu.RUnlock()
	n := 0
	var errs []error
	for _, snap := range snaps {
		if _, err := m.resume(snap, false, false, nil); err != nil {
			errs = append(errs, fmt.Errorf("session %s: %w", snap.ID, err))
			continue
		}
		n++
	}
	return n, errors.Join(errs...)
}

// Adopt registers sessions taken over from a failed cluster peer: snapshots
// reconstructed from the peer's shipped journal by the replication follower.
// Unlike Recover, adoption IS journaled — the adopting node's own journal
// must contain every adopted session, or a restart would lose them — but
// like Recover the snapshots are trusted (they come from a peer's journal,
// not a client), so the untrusted cost/limit checks are relaxed and a
// -cost-per-hit or limits mismatch between peers cannot destroy sessions.
// Sessions that fail to replay are skipped and reported, like Recover.
func (m *Manager) Adopt(snaps []Snapshot) (int, error) {
	m.compactMu.RLock()
	defer m.compactMu.RUnlock()
	n := 0
	var errs []error
	for _, snap := range snaps {
		if _, err := m.resume(snap, true, false, nil); err != nil {
			errs = append(errs, fmt.Errorf("session %s: %w", snap.ID, err))
			continue
		}
		n++
	}
	return n, errors.Join(errs...)
}

// validateSnapshot cross-checks a snapshot's stated crowd accounting against
// what its answer log can justify, so a forged or corrupted snapshot cannot
// smuggle budget into a resumed session. The structural check (every applied
// answer costs at least one HIT) holds for any snapshot; the rate check
// (stated cost must equal the recomputed HITs × CostPerHIT) applies only to
// untrusted client snapshots — boot recovery of the daemon's own journal
// must survive a -cost-per-hit change, where the live cost is simply
// rederived from the replayed HITs at the current rate.
func (m *Manager) validateSnapshot(snap Snapshot, untrusted bool) error {
	if snap.HITs < 0 {
		return fmt.Errorf("session: snapshot states negative HITs (%d)", snap.HITs)
	}
	if snap.HITs < len(snap.Answers) {
		return fmt.Errorf("session: snapshot states %d HITs for %d applied answers",
			snap.HITs, len(snap.Answers))
	}
	if !untrusted {
		return nil
	}
	// An untrusted snapshot must not smuggle resource limits past the
	// manager's caps any more than a create request could; merge errors on
	// excess. Boot recovery skips this so lowering a daemon flag cannot
	// destroy journaled sessions.
	if _, err := m.cfg.Limits.Merge(snap.Limits, true); err != nil {
		return err
	}
	recomputed := float64(snap.HITs) * m.cfg.CostPerHIT
	if diff := snap.Cost - recomputed; diff > 1e-9 || diff < -1e-9 {
		return fmt.Errorf("session: snapshot states cost $%v but %d HITs at $%v/HIT recompute to $%v",
			snap.Cost, snap.HITs, m.cfg.CostPerHIT, recomputed)
	}
	return nil
}

// resume is the shared rehydration path under compactMu. journalIt
// distinguishes paths that must write a resume event (client resume, peer
// adoption) from boot-time recovery (already journaled); untrusted
// distinguishes client-supplied snapshots (full cost/limit validation) from
// the daemon's or a peer's own journal (structural checks only). The
// combinations in use: client resume (true, true), boot recovery (false,
// false), failover adoption (true, false).
func (m *Manager) resume(snap Snapshot, journalIt, untrusted bool, tr *obs.Trace) (*Session, error) {
	if snap.ID == "" {
		return nil, fmt.Errorf("session: snapshot has no id")
	}
	if err := m.validateSnapshot(snap, untrusted); err != nil {
		return nil, err
	}
	sh := m.shardFor(snap.ID)
	sh.mu.Lock()
	_, taken := sh.m[snap.ID]
	sh.mu.Unlock()
	if taken {
		return nil, ErrExists
	}
	if err := m.reserve(); err != nil {
		return nil, err
	}
	// Rebuild under the snapshot's own limits so the question pool — hence
	// the version space — matches the session that was snapshotted. A client
	// resume already passed the validateSnapshot cap check; recovery honors
	// journaled limits even past a lowered daemon cap.
	lim, err := m.cfg.Limits.Merge(snap.Limits, false)
	if err != nil {
		m.live.Add(-1)
		return nil, err
	}
	// Resumed answer logs (client snapshots, boot recovery) fold into the
	// same shared vocabulary as live batches.
	m.intern.internAnswers(snap.Answers)
	buildDone := tr.StartPhase("learner.build")
	learner, err := NewLimited(snap.Model, snap.Task, lim)
	if err != nil {
		buildDone()
		m.live.Add(-1)
		return nil, err
	}
	m.attachCache(learner)
	for i, a := range snap.Answers {
		if err := learner.Record(a.Item, a.Positive); err != nil {
			buildDone()
			m.live.Add(-1)
			return nil, fmt.Errorf("session: replaying snapshot answer %d: %w", i, err)
		}
	}
	buildDone()
	s := m.newSession(snap.ID, snap.Model, snap.Task, learner, snap.MaxCost)
	if snap.Model == "path" {
		// Stamp the effective limits the learner was actually rebuilt with,
		// exactly like Create: a legacy limits-free snapshot is thereby
		// pinned to this daemon's current defaults from now on, instead of
		// silently reshaping on every future flag change.
		s.limits = lim.wire()
	}
	s.answers = append(s.answers, snap.Answers...)
	if n := len(snap.AnswerKeys); n > 0 {
		if n > maxAnswerKeys {
			snap.AnswerKeys = snap.AnswerKeys[n-maxAnswerKeys:]
		}
		s.answerKeys = append([]string(nil), snap.AnswerKeys...)
	}
	s.hits = snap.HITs
	s.createdAt = snap.CreatedAt

	// Unlike Create, the caller already knows this id, so an answer can
	// race the resume the moment the session is visible. Insert it with
	// its own lock held: racing operations block on s.mu until the resume
	// event is journaled, so no acknowledged answer can precede (or be
	// orphaned from) the resume event in the log.
	s.mu.Lock()
	sh.mu.Lock()
	if _, taken := sh.m[snap.ID]; taken {
		sh.mu.Unlock()
		s.mu.Unlock()
		m.live.Add(-1)
		return nil, ErrExists
	}
	sh.m[snap.ID] = s
	sh.mu.Unlock()
	ev := Event{Kind: EventResume, ID: snap.ID, Snapshot: &snap}
	if err := m.commit(tr, ev, journalIt); err != nil {
		m.finishRemoval(s)
		return nil, err
	}
	s.mu.Unlock()
	return s, nil
}

// Compact freezes the event stream, snapshots every live session, and asks
// the journal to rewrite itself as those snapshots — dropping the event tail
// they subsume. It returns the number of sessions written. A nil journal, or
// one that cannot compact, is a no-op.
func (m *Manager) Compact() (int, error) {
	comp, ok := m.cfg.Journal.(Compactor)
	if !ok {
		return 0, nil
	}
	m.compactMu.Lock()
	defer m.compactMu.Unlock()
	var snaps []Snapshot
	for _, sh := range m.shards {
		sh.mu.Lock()
		for _, s := range sh.m {
			snaps = append(snaps, s.Snapshot())
		}
		sh.mu.Unlock()
	}
	// Deterministic journal order: oldest session first.
	sort.Slice(snaps, func(i, j int) bool {
		if !snaps[i].CreatedAt.Equal(snaps[j].CreatedAt) {
			return snaps[i].CreatedAt.Before(snaps[j].CreatedAt)
		}
		return snaps[i].ID < snaps[j].ID
	})
	return len(snaps), comp.Compact(snaps)
}

// ---- per-session operations ----

// ID returns the session id.
func (s *Session) ID() string { return s.id }

// Model returns the session's model name.
func (s *Session) Model() string { return s.model }

func (s *Session) touch() { s.lastActiveNS.Store(s.clock().UnixNano()) }

// checkLive is called under s.mu before mutating operations.
func (s *Session) checkLive() error {
	if s.evicted {
		return ErrNotFound
	}
	if s.failed != nil {
		return fmt.Errorf("%w: %v", ErrFailed, s.failed)
	}
	return nil
}

// Question proposes the next question. ok=false means converged.
func (s *Session) Question() (Question, bool, error) {
	qs, err := s.Questions(1)
	if err != nil || len(qs) == 0 {
		return Question{}, false, err
	}
	return qs[0], true, nil
}

// Questions proposes up to k pairwise-distinct informative items for
// parallel crowd dispatch — the paper's many-workers scenario, where k HITs
// go out at once and the answers come back as one batch. An empty result
// means converged.
func (s *Session) Questions(k int) ([]Question, error) { return s.QuestionsTraced(k, nil) }

// QuestionsTraced is Questions with per-phase attribution onto tr
// (nil-safe): session.lock is the wait for this session's serializing lock,
// learner.propose the informative-item search itself.
func (s *Session) QuestionsTraced(k int, tr *obs.Trace) ([]Question, error) {
	lockDone := tr.StartPhase("session.lock")
	s.mu.Lock()
	lockDone()
	defer s.mu.Unlock()
	s.touch()
	if err := s.checkLive(); err != nil {
		return nil, err
	}
	proposeDone := tr.StartPhase("learner.propose")
	qs, err := s.learner.Propose(k)
	proposeDone()
	drainPlan(s.learner, tr)
	if err != nil {
		return nil, err
	}
	s.mgr.questions.Add(int64(len(qs)))
	return qs, nil
}

// Reconcile modes for batched answers, re-exported from the wire protocol.
const (
	// ReconcileNone applies every label in order.
	ReconcileNone = api.ReconcileNone
	// ReconcileMajority groups labels by item and applies each item's
	// majority verdict once — the crowd defence against worker error.
	// Ties are rejected.
	ReconcileMajority = api.ReconcileMajority
)

// Answer ingests a batch of labels. Every submitted label is one paid HIT
// for cost accounting; with majority reconciliation, repeated labels of one
// item are votes. Budget and consistency are checked before anything is
// applied; a Record error mid-batch marks the session failed.
func (s *Session) Answer(batch []Answer, reconcile string) (AnswerResult, error) {
	return s.AnswerTraced(batch, reconcile, nil)
}

// AnswerTraced is Answer with per-phase attribution onto tr (nil-safe):
// session.lock (compaction gate + session serialization), learner.validate,
// journal.append (inside commit), learner.record, and the trailing
// learner.propose that computes Remaining.
func (s *Session) AnswerTraced(batch []Answer, reconcile string, tr *obs.Trace) (AnswerResult, error) {
	res, _, err := s.AnswerIdemTraced(batch, reconcile, "", tr)
	return res, err
}

// AnswerIdemTraced is AnswerTraced with a durable idempotency key. A
// non-empty key is journaled with the batch's event and kept in the
// session's bounded key window; a batch arriving under a key already in the
// window — a client retry whose original landed, possibly on a node that has
// since died and been failed over — is not re-applied or re-charged, and
// returns the session's current totals with replayed=true. This is the
// session-layer backstop beneath the server's byte-replay cache: the cache
// dies with its process, the window travels with the session's journal.
func (s *Session) AnswerIdemTraced(batch []Answer, reconcile, key string, tr *obs.Trace) (AnswerResult, bool, error) {
	if len(batch) == 0 {
		return AnswerResult{}, false, fmt.Errorf("session: empty answer batch")
	}
	// Answer mutates state, so it participates in the event stream: take the
	// compaction read-lock before the session lock (the manager-wide lock
	// order), then journal write-ahead below.
	lockDone := tr.StartPhase("session.lock")
	s.mgr.compactMu.RLock()
	defer s.mgr.compactMu.RUnlock()
	s.mu.Lock()
	lockDone()
	defer s.mu.Unlock()
	s.touch()
	if err := s.checkLive(); err != nil {
		return AnswerResult{}, false, err
	}
	if key != "" {
		for _, k := range s.answerKeys {
			if k == key {
				// The original attempt under this key already applied and
				// charged the batch (here, or on the node this session was
				// failed over from). Report the current totals without
				// re-executing; Applied is zero because THIS request
				// applied nothing.
				res := AnswerResult{HITs: s.hits, Cost: float64(s.hits) * s.costPerHIT}
				qs, err := s.learner.Propose(1)
				if err != nil {
					return AnswerResult{}, true, err
				}
				if len(qs) > 0 {
					res.Remaining = qs[0].Remaining
				} else {
					res.Done = true
				}
				return res, true, nil
			}
		}
	}

	var apply []Answer
	switch reconcile {
	case ReconcileNone:
		apply = batch
	case ReconcileMajority:
		var err error
		if apply, err = majority(batch); err != nil {
			return AnswerResult{}, false, err
		}
	default:
		return AnswerResult{}, false, fmt.Errorf("session: unknown reconcile mode %q (want %q or %q)",
			reconcile, ReconcileNone, ReconcileMajority)
	}

	// Validate the whole batch before charging or applying anything: a
	// malformed item (bad JSON, out-of-range index, unknown node) rejects
	// the batch cleanly and leaves the session healthy. Only answers that
	// survive validation can fail Record, and such a failure is genuine
	// inconsistency — the poison-pill below.
	validateDone := tr.StartPhase("learner.validate")
	for _, a := range apply {
		if err := s.learner.Validate(a.Item); err != nil {
			validateDone()
			return AnswerResult{}, false, err
		}
	}
	validateDone()

	cost := float64(s.hits+len(batch)) * s.costPerHIT
	if s.maxCost > 0 && cost > s.maxCost {
		return AnswerResult{}, false, fmt.Errorf("%w: batch of %d labels would cost $%.2f of a $%.2f budget",
			ErrBudgetExhausted, len(batch), cost, s.maxCost)
	}
	// Canonicalize the surviving items before they are journaled or retained
	// in s.answers: the session then shares the manager-wide vocabulary
	// bytes instead of pinning this request's body buffer.
	s.mgr.intern.internAnswers(apply)
	// Write-ahead: the batch must be durable before it is applied or
	// charged. A journal failure rejects the batch with the session intact.
	preHITs, preAnswers := s.hits, len(s.answers)
	ev := Event{
		Kind: EventAnswers, ID: s.id, Answers: apply,
		HITs: s.hits + len(batch), Cost: cost, Key: key,
	}
	if err := s.mgr.commit(tr, ev, true); err != nil {
		return AnswerResult{}, false, err
	}
	s.hits += len(batch)
	if key != "" {
		s.answerKeys = pushAnswerKey(s.answerKeys, key)
	}

	recordDone := tr.StartPhase("learner.record")
	for _, a := range apply {
		if err := s.learner.Record(a.Item, a.Positive); err != nil {
			recordDone()
			// Genuine inconsistency: no hypothesis fits the answers. The
			// batch's event is already durable, so left alone it would
			// poison every future boot (replaying it fails the same way,
			// dropping the whole session) — and a half-applied answer log
			// must not be what Snapshot() or a compaction captures. Roll
			// the accounting back to the pre-batch state and journal a
			// compensating snapshot record that restores it, so recovery
			// resurrects the session at its last consistent state while
			// the live one stays marked failed.
			s.failed = err
			s.hits, s.answers = preHITs, s.answers[:preAnswers]
			comp := s.snapshotLocked()
			if cerr := s.mgr.commit(tr, Event{Kind: EventSnapshot, ID: s.id, Snapshot: &comp}, true); cerr != nil {
				// Disk and version space both broken: the failed mark
				// already stops further use; recovery will skip the
				// session with an error.
				err = errors.Join(err, cerr)
			}
			return AnswerResult{}, false, fmt.Errorf("%w: %v", ErrFailed, err)
		}
		s.answers = append(s.answers, a)
	}
	recordDone()
	// Label accounting lives on the session path (not the HTTP layer), so
	// every ingestion surface — server, SDK-driven experiments, direct
	// manager use — counts identically.
	s.mgr.labels.Add(int64(len(batch)))
	res := AnswerResult{
		Applied: len(apply),
		HITs:    s.hits,
		Cost:    float64(s.hits) * s.costPerHIT,
	}
	proposeDone := tr.StartPhase("learner.propose")
	qs, err := s.learner.Propose(1)
	proposeDone()
	drainPlan(s.learner, tr)
	if err != nil {
		return AnswerResult{}, false, err
	}
	if len(qs) > 0 {
		res.Remaining = qs[0].Remaining
	} else {
		res.Done = true
	}
	return res, false, nil
}

// majority reduces a batch to one verdict per distinct item, preserving
// first-occurrence order.
func majority(batch []Answer) ([]Answer, error) {
	type tally struct {
		item    json.RawMessage
		yes, no int
	}
	var order []string
	votes := map[string]*tally{}
	for _, a := range batch {
		key, err := ItemKey(a.Item)
		if err != nil {
			return nil, err
		}
		t := votes[key]
		if t == nil {
			t = &tally{item: a.Item}
			votes[key] = t
			order = append(order, key)
		}
		if a.Positive {
			t.yes++
		} else {
			t.no++
		}
	}
	out := make([]Answer, 0, len(order))
	for _, key := range order {
		t := votes[key]
		if t.yes == t.no {
			return nil, fmt.Errorf("session: majority tie (%d-%d) for item %s", t.yes, t.no, compact(t.item))
		}
		out = append(out, Answer{Item: t.item, Positive: t.yes > t.no})
	}
	return out, nil
}

// Hypothesis snapshots the current best hypothesis.
func (s *Session) Hypothesis() (Hypothesis, error) { return s.HypothesisTraced(nil) }

// HypothesisTraced is Hypothesis with per-phase attribution onto tr
// (nil-safe).
func (s *Session) HypothesisTraced(tr *obs.Trace) (Hypothesis, error) {
	lockDone := tr.StartPhase("session.lock")
	s.mu.Lock()
	lockDone()
	defer s.mu.Unlock()
	s.touch()
	if s.evicted {
		return Hypothesis{}, ErrNotFound
	}
	h, err := s.learner.Hypothesis()
	drainPlan(s.learner, tr)
	return h, err
}

// Snapshot captures the session for persistence.
func (s *Session) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshotLocked()
}

// snapshotLocked builds the snapshot under an already-held s.mu (Answer's
// compensating record needs it mid-operation).
func (s *Session) snapshotLocked() Snapshot {
	answers := make([]Answer, len(s.answers))
	copy(answers, s.answers)
	snap := Snapshot{
		ID: s.id, Model: s.model, Task: s.task,
		Answers: answers, HITs: s.hits,
		Cost: float64(s.hits) * s.costPerHIT, MaxCost: s.maxCost,
		CreatedAt: s.createdAt, Limits: s.limits,
	}
	if len(s.answerKeys) > 0 {
		snap.AnswerKeys = append([]string(nil), s.answerKeys...)
	}
	return snap
}

// Status summarizes the session.
func (s *Session) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Status{
		ID: s.id, Model: s.model,
		Answers: len(s.answers), HITs: s.hits,
		Cost: float64(s.hits) * s.costPerHIT, MaxCost: s.maxCost,
		CreatedAt: s.createdAt,
	}
	if s.failed != nil {
		st.Failed = s.failed.Error()
	}
	return st
}
