package session

import (
	"encoding/json"
	"sync"
)

// itemInterner canonicalizes answer-item bytes across the whole manager.
//
// Answer items arrive as json.RawMessage slices pointing into per-request
// body buffers, and a version-space dialogue labels the same small question
// vocabulary over and over: every session's answer log, every snapshot, and
// every journaled event would otherwise retain its own copy of the same few
// objects — each one pinning its whole request-body allocation alive.
// Interning swaps each item for one shared canonical copy, so the steady
// state holds the vocabulary once and answer batches retain nothing of
// their transport buffers.
//
// The table is capped: past internMaxItems entries or internMaxBytes total,
// new items pass through un-interned (correctness is unaffected — interning
// is purely a sharing optimization, and an adversarial stream of distinct
// items must not grow memory without bound).
const (
	internMaxItems = 1 << 20
	internMaxBytes = 256 << 20
)

type itemInterner struct {
	mu    sync.Mutex
	items map[string]json.RawMessage
	bytes int64
	// decoded memoizes decodeItem results per model: the typed struct an
	// item's bytes decode to is a pure function of (model, bytes) — range
	// and existence checks against a session's task stay per-call — so
	// equal items across requests and sessions decode once instead of
	// paying a json.Decoder per Validate and per Record.
	decoded  map[string]map[string]any
	nDecoded int
}

func newItemInterner() *itemInterner {
	return &itemInterner{
		items:   make(map[string]json.RawMessage),
		decoded: make(map[string]map[string]any),
	}
}

// internAnswers rewrites each answer's Item to the canonical shared copy,
// in place. Nil-safe.
func (in *itemInterner) internAnswers(answers []Answer) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for i := range answers {
		item := answers[i].Item
		if len(item) == 0 {
			continue
		}
		// The string(item) map lookup does not allocate (compiler-recognized
		// pattern); only a genuinely new item pays for its canonical copy.
		if canon, ok := in.items[string(item)]; ok {
			answers[i].Item = canon
			continue
		}
		if len(in.items) >= internMaxItems || in.bytes+int64(len(item)) > internMaxBytes {
			continue
		}
		canon := make(json.RawMessage, len(item))
		copy(canon, item)
		in.items[string(canon)] = canon
		in.bytes += int64(len(canon))
		answers[i].Item = canon
	}
}

// getDecoded returns the memoized decode of an item under a model. Nil-safe.
func (in *itemInterner) getDecoded(model string, raw json.RawMessage) (any, bool) {
	if in == nil {
		return nil, false
	}
	in.mu.Lock()
	v, ok := in.decoded[model][string(raw)]
	in.mu.Unlock()
	return v, ok
}

// putDecoded memoizes a successful decode. Values must be plain value
// structs (no pointers into session or task state) so sharing them across
// sessions is safe. Capped like the byte table; past the cap new items
// simply decode every time. Nil-safe.
func (in *itemInterner) putDecoded(model string, raw json.RawMessage, v any) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.nDecoded >= internMaxItems {
		return
	}
	m := in.decoded[model]
	if m == nil {
		m = make(map[string]any)
		in.decoded[model] = m
	}
	if _, ok := m[string(raw)]; !ok {
		m[string(raw)] = v
		in.nDecoded++
	}
}

// stats reports the table's entry count and byte size.
func (in *itemInterner) stats() (items int, bytes int64) {
	if in == nil {
		return 0, 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.items), in.bytes
}
