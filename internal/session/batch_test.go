package session

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

// batchTasks builds, per model, a task whose initial frontier comfortably
// exceeds one 16-question batch (twig 19, join 64, path 39, schema 20).
func batchTasks() map[string]string {
	var tw strings.Builder
	tw.WriteString("doc <lib>")
	for i := 0; i < 20; i++ {
		tw.WriteString("<book><title/><year/></book>")
	}
	tw.WriteString("</lib>\npos 0 /0/0\n")

	var j strings.Builder
	j.WriteString("left P id,city\n")
	for i := 0; i < 8; i++ {
		fmt.Fprintf(&j, "lrow %d,c%d\n", i+1, i%3)
	}
	j.WriteString("right O buyer,place\n")
	for i := 0; i < 8; i++ {
		fmt.Fprintf(&j, "rrow %d,c%d\n", i+1, i%3)
	}

	var p strings.Builder
	for i := 0; i < 12; i++ {
		fmt.Fprintf(&p, "edge n%d highway n%d\n", i, i+1)
		fmt.Fprintf(&p, "edge n%d road m%d\n", i, i)
	}
	p.WriteString("pos n0 n2\n")

	var s strings.Builder
	s.WriteString("doc <r>")
	for i := 0; i < 10; i++ {
		fmt.Fprintf(&s, "<l%d/>", i)
	}
	s.WriteString("</r>\n")

	return map[string]string{
		"twig": tw.String(), "join": j.String(), "path": p.String(), "schema": s.String(),
	}
}

// batchOracles answers the batchTasks dialogues: goals are /lib/book/title
// (twig), id=buyer & city=place with positives on the diagonal (join),
// highway.highway (path), and "root r with at least one of every label"
// (schema).
func batchOracles() map[string]func(json.RawMessage) bool {
	return map[string]func(json.RawMessage) bool{
		"twig": func(item json.RawMessage) bool {
			var it struct {
				Doc  int    `json:"doc"`
				Path string `json:"path"`
			}
			if json.Unmarshal(item, &it) != nil {
				return false
			}
			// Titles are child 0 of every book: paths /i/0.
			parts := strings.Split(strings.TrimPrefix(it.Path, "/"), "/")
			return len(parts) == 2 && parts[1] == "0"
		},
		"join": func(item json.RawMessage) bool {
			var it struct{ Left, Right int }
			if json.Unmarshal(item, &it) != nil {
				return false
			}
			return it.Left == it.Right
		},
		"path": func(item json.RawMessage) bool {
			var it struct{ Src, Dst string }
			if json.Unmarshal(item, &it) != nil {
				return false
			}
			// highway.highway on the n-chain: n{i} -> n{i+2}.
			var a, b int
			if n, _ := fmt.Sscanf(it.Src, "n%d", &a); n != 1 {
				return false
			}
			if n, _ := fmt.Sscanf(it.Dst, "n%d", &b); n != 1 {
				return false
			}
			return b == a+2
		},
		"schema": func(item json.RawMessage) bool {
			var it struct{ Doc string }
			if json.Unmarshal(item, &it) != nil {
				return false
			}
			for i := 0; i < 10; i++ {
				if !strings.Contains(it.Doc, fmt.Sprintf("<l%d/>", i)) {
					return false
				}
			}
			return true
		},
	}
}

// TestProposeBatchDistinct is the model-level acceptance check for the
// batch-first surface: Propose(16) returns 16 pairwise-distinct informative
// items for every model, all individually recordable, and Propose clamps
// k against the open-item count.
func TestProposeBatchDistinct(t *testing.T) {
	for model, task := range batchTasks() {
		l, err := New(model, task)
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		qs, err := l.Propose(16)
		if err != nil {
			t.Fatalf("%s Propose: %v", model, err)
		}
		if len(qs) != 16 {
			t.Fatalf("%s: Propose(16) returned %d questions (fixture frontier too small?)", model, len(qs))
		}
		seen := map[string]bool{}
		for i, q := range qs {
			if q.Model != model {
				t.Errorf("%s question %d has model %q", model, i, q.Model)
			}
			if q.Remaining < 16 {
				t.Errorf("%s question %d reports remaining=%d < batch size", model, i, q.Remaining)
			}
			key, err := ItemKey(q.Item)
			if err != nil {
				t.Fatalf("%s question %d item: %v", model, i, err)
			}
			if seen[key] {
				t.Errorf("%s: duplicate item in batch: %s", model, q.Item)
			}
			seen[key] = true
			if err := l.Validate(q.Item); err != nil {
				t.Errorf("%s: proposed item fails validation: %v", model, err)
			}
		}
		// Clamping: k above the frontier truncates, k below 1 means 1.
		all, err := l.Propose(1 << 20)
		if err != nil {
			t.Fatal(err)
		}
		if len(all) == 0 || len(all) != all[0].Remaining {
			t.Errorf("%s: Propose(huge) returned %d of %d open items", model, len(all), all[0].Remaining)
		}
		one, err := l.Propose(-5)
		if err != nil || len(one) != 1 {
			t.Errorf("%s: Propose(-5) = %d questions, err %v (want 1, nil)", model, len(one), err)
		}
	}
}

// driveBatched answers questions in batches of k until convergence.
func driveBatched(t *testing.T, l Learner, k int, oracle func(json.RawMessage) bool) (Hypothesis, int) {
	t.Helper()
	labels := 0
	for rounds := 0; ; rounds++ {
		if rounds > 1000 {
			t.Fatalf("%s k=%d did not converge", l.Model(), k)
		}
		qs, err := l.Propose(k)
		if err != nil {
			t.Fatalf("%s Propose: %v", l.Model(), err)
		}
		if len(qs) == 0 {
			break
		}
		for _, q := range qs {
			if err := l.Record(q.Item, oracle(q.Item)); err != nil {
				t.Fatalf("%s Record %s: %v", l.Model(), q.Item, err)
			}
			labels++
		}
	}
	h, err := l.Hypothesis()
	if err != nil {
		t.Fatal(err)
	}
	return h, labels
}

// TestBatchVsSequentialDifferential pins the core batching property: a
// dialogue answered in k-batches converges to the same hypothesis as the
// classic one-question-at-a-time loop, for every model and several k.
func TestBatchVsSequentialDifferential(t *testing.T) {
	orcs := batchOracles()
	for model, task := range batchTasks() {
		seq, err := New(model, task)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := driveBatched(t, seq, 1, orcs[model])
		if !want.Converged {
			t.Fatalf("%s: sequential dialogue did not converge", model)
		}
		for _, k := range []int{4, 16} {
			batched, err := New(model, task)
			if err != nil {
				t.Fatal(err)
			}
			got, _ := driveBatched(t, batched, k, orcs[model])
			if !got.Converged {
				t.Errorf("%s k=%d: batched dialogue did not converge", model, k)
			}
			if got.Query != want.Query {
				t.Errorf("%s k=%d: batched learned %q, sequential learned %q", model, k, got.Query, want.Query)
			}
		}
	}
}

// TestBatchAnswersSameAsSequentialAnswers pins the stronger per-step
// property behind the differential: recording one k-batch's items one by
// one equals the sequential replay of the same items — so snapshot/resume
// (which replays the answer log) is equivalence-preserving mid-batch.
func TestBatchAnswersSameAsSequentialAnswers(t *testing.T) {
	orcs := batchOracles()
	for model, task := range batchTasks() {
		a, err := New(model, task)
		if err != nil {
			t.Fatal(err)
		}
		qs, err := a.Propose(16)
		if err != nil {
			t.Fatal(err)
		}
		b, err := New(model, task)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range qs {
			verdict := orcs[model](q.Item)
			if err := a.Record(q.Item, verdict); err != nil {
				t.Fatalf("%s batch record: %v", model, err)
			}
			if err := b.Record(q.Item, verdict); err != nil {
				t.Fatalf("%s sequential record: %v", model, err)
			}
		}
		ha, err := a.Hypothesis()
		if err != nil {
			t.Fatal(err)
		}
		hb, err := b.Hypothesis()
		if err != nil {
			t.Fatal(err)
		}
		if ha.Query != hb.Query || ha.Converged != hb.Converged {
			t.Errorf("%s: batch hypothesis %+v != sequential %+v", model, ha, hb)
		}
	}
}
