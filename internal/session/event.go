package session

import (
	"fmt"
	"time"

	"querylearn/internal/obs"
	"querylearn/pkg/api"
)

// Event kinds. Every state mutation a Manager performs is expressed as
// exactly one Event and routed through the manager's single commit path, so
// a Journal observes the complete mutation history: replaying the events (in
// order) reconstructs the live sessions byte-for-byte.
const (
	// EventCreate registers a fresh session from a task.
	EventCreate = "create"
	// EventResume registers a session rehydrated from a client-supplied
	// snapshot (POST /sessions/resume).
	EventResume = "resume"
	// EventAnswers applies a batch of reconciled labels and advances the
	// crowd-cost accounting.
	EventAnswers = "answers"
	// EventDelete removes a session at the client's request.
	EventDelete = "delete"
	// EventEvict removes a session that idled past the TTL.
	EventEvict = "evict"
	// EventSnapshot is a compaction record: the full state of one session,
	// replacing its create/resume event and answer tail in a rewritten
	// journal.
	EventSnapshot = "snapshot"
)

// Event is one journal record: a session mutation in wire form. Only the
// fields relevant to the kind are set.
type Event struct {
	Kind string `json:"kind"`
	ID   string `json:"id"`

	// Create fields.
	Model     string          `json:"model,omitempty"`
	Task      string          `json:"task,omitempty"`
	MaxCost   float64         `json:"max_cost,omitempty"`
	Limits    *api.PathLimits `json:"limits,omitempty"`
	CreatedAt time.Time       `json:"created_at,omitzero"`

	// Answers fields. Answers holds the post-reconciliation labels actually
	// applied; HITs and Cost are the absolute totals after the batch, so
	// replay is insensitive to a lost prefix being re-established by a later
	// snapshot record. Key carries the batch's Idempotency-Key (if any), so
	// replay — on this node or on a failover peer that shipped the journal —
	// rebuilds the session's replay-detection window along with its state.
	Answers []Answer `json:"answers,omitempty"`
	HITs    int      `json:"hits,omitempty"`
	Cost    float64  `json:"cost,omitempty"`
	Key     string   `json:"key,omitempty"`

	// Snapshot carries the full session state for resume and compaction
	// records.
	Snapshot *Snapshot `json:"snapshot,omitempty"`
}

// Journal observes the manager's mutation events. Append must be durable (to
// the implementation's configured degree) before it returns: the manager
// journals write-ahead, so an event that fails to append aborts the mutation.
// A nil Journal is the in-memory manager of PR 2 — no observation at all.
// Implementations must be safe for concurrent use.
type Journal interface {
	Append(Event) error
}

// TracedJournal is the optional journal extension for request tracing: an
// implementation that can attribute its own internal phases (group-commit
// fsync wait, say) records them on the request's trace. The manager prefers
// AppendTraced over Append when the journal supports it and a trace is
// present; Append remains the durability contract.
type TracedJournal interface {
	AppendTraced(ev Event, tr *obs.Trace) error
}

// Compactor is the optional journal extension the manager's Compact uses: it
// rewrites the log as one EventSnapshot record per live session, dropping
// the event tail the snapshots subsume.
type Compactor interface {
	Compact(snaps []Snapshot) error
}

// ApplyEvent folds one journal event into a map of session snapshot states —
// the single replay rule. The store's recovery and its fuzz targets both use
// it, so there is exactly one definition of what a journal means.
func ApplyEvent(states map[string]*Snapshot, ev Event) error {
	switch ev.Kind {
	case EventCreate:
		if ev.ID == "" {
			return fmt.Errorf("session: create event without id")
		}
		states[ev.ID] = &Snapshot{
			ID: ev.ID, Model: ev.Model, Task: ev.Task,
			MaxCost: ev.MaxCost, Limits: ev.Limits, CreatedAt: ev.CreatedAt,
		}
	case EventResume, EventSnapshot:
		if ev.Snapshot == nil {
			return fmt.Errorf("session: %s event without snapshot", ev.Kind)
		}
		snap := *ev.Snapshot
		if snap.ID == "" {
			return fmt.Errorf("session: %s event snapshot without id", ev.Kind)
		}
		snap.Answers = append([]Answer(nil), snap.Answers...)
		states[snap.ID] = &snap
	case EventAnswers:
		s := states[ev.ID]
		if s == nil {
			return fmt.Errorf("session: answers event for unknown session %q", ev.ID)
		}
		s.Answers = append(s.Answers, ev.Answers...)
		s.HITs = ev.HITs
		s.Cost = ev.Cost
		if ev.Key != "" {
			s.AnswerKeys = pushAnswerKey(s.AnswerKeys, ev.Key)
		}
	case EventDelete, EventEvict:
		delete(states, ev.ID)
	default:
		return fmt.Errorf("session: unknown event kind %q", ev.Kind)
	}
	return nil
}

// maxAnswerKeys bounds a session's idempotency-key replay window. The window
// exists to absorb a client's bounded retry loop crossing a failover, not to
// deduplicate forever; the server-side byte-replay cache already covers the
// common same-node case.
const maxAnswerKeys = 128

// pushAnswerKey appends one key to the bounded window, newest last.
func pushAnswerKey(keys []string, key string) []string {
	keys = append(keys, key)
	if len(keys) > maxAnswerKeys {
		keys = append(keys[:0], keys[len(keys)-maxAnswerKeys:]...)
	}
	return keys
}
