package session

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

// Shared task fixtures. Each is small enough for a dialogue to converge in a
// handful of questions, yet leaves genuinely informative items after its
// seed examples.
const (
	twigTask = `
doc <lib><book><title/><year/></book><book><title/></book></lib>
doc <lib><book><year/><title/></book></lib>
pos 0 /0/0
`
	joinTask = `
left P id,city
lrow 1,lille
lrow 2,paris
right O buyer,place
rrow 1,lille
rrow 2,rome
`
	pathTask = `
edge lille highway paris
edge paris highway lyon
edge lille ferry dover
pos lille lyon
`
	schemaTask = `
doc <r><a/><b/></r>
doc <r><a/><a/><b/></r>
`
)

func tasks() map[string]string {
	return map[string]string{
		"twig": twigTask, "join": joinTask, "path": pathTask, "schema": schemaTask,
	}
}

// oracles returns a deterministic goal oracle per model, phrased directly
// over the wire item encodings.
func oracles(t *testing.T) map[string]func(item json.RawMessage) bool {
	t.Helper()
	return map[string]func(item json.RawMessage) bool{
		// Goal: /lib/book[year]/title — titles of books that also have a year.
		"twig": func(item json.RawMessage) bool {
			var it struct {
				Doc  int    `json:"doc"`
				Path string `json:"path"`
			}
			mustUnmarshal(t, item, &it)
			return it.Doc == 0 && it.Path == "/0/0" || it.Doc == 1 && it.Path == "/0/1"
		},
		// Goal: id=buyer & city=place — only (0,0) matches.
		"join": func(item json.RawMessage) bool {
			var it struct{ Left, Right int }
			mustUnmarshal(t, item, &it)
			return it.Left == 0 && it.Right == 0
		},
		// Goal: highway.highway — lille->lyon only.
		"path": func(item json.RawMessage) bool {
			var it struct{ Src, Dst string }
			mustUnmarshal(t, item, &it)
			return it.Src == "lille" && it.Dst == "lyon"
		},
		// Goal: r -> a+ || b, a/b leaves.
		"schema": func(item json.RawMessage) bool {
			var it struct{ Doc string }
			mustUnmarshal(t, item, &it)
			as := strings.Count(it.Doc, "<a/>")
			bs := strings.Count(it.Doc, "<b/>")
			return as >= 1 && bs == 1 && strings.Count(it.Doc, "<r>") == 1
		},
	}
}

func mustUnmarshal(t *testing.T, raw json.RawMessage, into any) {
	t.Helper()
	if err := json.Unmarshal(raw, into); err != nil {
		t.Fatalf("unmarshal %s: %v", raw, err)
	}
}

// drive answers questions until the learner converges, returning the final
// hypothesis and the number of questions asked.
func drive(t *testing.T, l Learner, oracle func(json.RawMessage) bool) (Hypothesis, int) {
	t.Helper()
	questions := 0
	for {
		q, ok, err := Next(l)
		if err != nil {
			t.Fatalf("%s Next after %d questions: %v", l.Model(), questions, err)
		}
		if !ok {
			break
		}
		questions++
		if questions > 500 {
			t.Fatalf("%s dialogue did not converge in 500 questions", l.Model())
		}
		if err := l.Record(q.Item, oracle(q.Item)); err != nil {
			t.Fatalf("%s Record %s: %v", l.Model(), q.Item, err)
		}
	}
	h, err := l.Hypothesis()
	if err != nil {
		t.Fatalf("%s Hypothesis: %v", l.Model(), err)
	}
	if !h.Converged {
		t.Errorf("%s hypothesis not marked converged after Next returned done", l.Model())
	}
	return h, questions
}

func TestAllModelsConvergeToGoal(t *testing.T) {
	want := map[string]string{
		"twig":   "/lib/book[year]/title",
		"join":   "city=place & id=buyer",
		"path":   "highway.highway",
		"schema": "root r\na -> epsilon\nb -> epsilon\nr -> a+ || b\n",
	}
	orcs := oracles(t)
	for model, task := range tasks() {
		l, err := New(model, task)
		if err != nil {
			t.Fatalf("New(%s): %v", model, err)
		}
		if l.Model() != model {
			t.Errorf("Model() = %q, want %q", l.Model(), model)
		}
		h, questions := drive(t, l, orcs[model])
		if h.Query != want[model] {
			t.Errorf("%s learned %q, want %q", model, h.Query, want[model])
		}
		if questions == 0 {
			t.Errorf("%s: expected a real dialogue, got 0 questions", model)
		}
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	cases := []struct{ model, task, wantSub string }{
		{"nope", "x", "unknown model"},
		{"twig", "doc <a><b/></a>", "positive example"},
		{"twig", "garbage", "unknown directive"},
		{"join", "left L a\nlrow 1\nright R b\nrrow 1\nsemijoin\npos 0", "batch-only"},
		{"join", "lrow 1", "before its relation"},
		{"path", "edge a r b", "positive example"},
		{"schema", "", "no documents"},
	}
	for _, c := range cases {
		if _, err := New(c.model, c.task); err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("New(%s, %q) error = %v, want containing %q", c.model, c.task, err, c.wantSub)
		}
	}
}

func TestRecordRejectsMalformedItems(t *testing.T) {
	// Malformed wire bodies must produce errors, not panics — the daemon's
	// contract.
	items := map[string][]string{
		"twig":   {`{"doc":99,"path":"/0"}`, `{"doc":0,"path":"/99"}`, `{"doc":"x"}`, `[1,2]`},
		"join":   {`{"left":-1,"right":0}`, `{"left":0,"right":99}`, `"nope"`},
		"path":   {`{"src":"ghost","dst":"lille"}`, `{"src":"lille","dst":"ghost"}`, `123`},
		"schema": {`{"doc":"<unclosed"}`, `{"doc":""}`, `{}`, `{"doc":"<other/>"}`},
	}
	// Items of another model must be rejected by the strict decoder, not
	// silently zero-valued into a wrong label.
	crossModel := map[string]string{
		"twig":   `{"left":0,"right":0}`,
		"join":   `{"src":"lille","dst":"lyon"}`,
		"path":   `{"doc":0,"path":"/0"}`,
		"schema": `{"left":0,"right":0}`,
	}
	for model, task := range tasks() {
		l, err := New(model, task)
		if err != nil {
			t.Fatalf("New(%s): %v", model, err)
		}
		for _, raw := range append(items[model], crossModel[model]) {
			if err := l.Validate(json.RawMessage(raw)); err == nil {
				t.Errorf("%s Validate(%s) succeeded, want error", model, raw)
			}
			if err := l.Record(json.RawMessage(raw), true); err == nil {
				t.Errorf("%s Record(%s) succeeded, want error", model, raw)
			}
		}
	}
}

func TestPathSessionNodeLimit(t *testing.T) {
	// The version space is pool-projected and sparse, so the old dense
	// 4096-node ceiling is gone: a graph above it must create fine under the
	// default limits, while an explicitly tightened limit still rejects.
	var b strings.Builder
	for i := 0; i <= 4096; i++ {
		fmt.Fprintf(&b, "edge n%d r n%d\n", i, i+1)
	}
	// A two-hop seed (witness word r.r) so distance-1 pool pairs are
	// informative: r.r rejects them, the starred generalizations accept.
	b.WriteString("pos n0 n2\n")
	task := b.String()
	lim := Limits{PathPoolLimit: 60, PathPoolMaxLen: 3} // small pool keeps the test quick
	l, err := NewLimited("path", task, lim)
	if err != nil {
		t.Fatalf("4097-node graph rejected under default node limit: %v", err)
	}
	if qs, err := l.Propose(1); err != nil || len(qs) == 0 {
		t.Fatalf("big-graph session proposes nothing: qs=%v err=%v", qs, err)
	}
	lim.PathMaxNodes = 4096
	if _, err := NewLimited("path", task, lim); err == nil || !strings.Contains(err.Error(), "session limit") {
		t.Errorf("tightened limit = %v, want node-limit error", err)
	}
}

func TestItemKeyCanonicalizesFieldOrder(t *testing.T) {
	a, err := ItemKey(json.RawMessage(`{"left":1,"right":2}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ItemKey(json.RawMessage(`{"right":2, "left":1}`))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("keys differ for reordered fields: %q vs %q", a, b)
	}
	if _, err := ItemKey(json.RawMessage(`{broken`)); err == nil {
		t.Errorf("bad JSON should fail")
	}
}

func TestSchemaNegativeAnswersPruneFrontier(t *testing.T) {
	l, err := New("schema", schemaTask)
	if err != nil {
		t.Fatal(err)
	}
	q, ok, err := Next(l)
	if err != nil || !ok {
		t.Fatalf("Next: ok=%v err=%v", ok, err)
	}
	if err := l.Record(q.Item, false); err != nil {
		t.Fatalf("negative Record: %v", err)
	}
	q2, ok, err := Next(l)
	if err != nil {
		t.Fatal(err)
	}
	if ok && string(q2.Item) == string(q.Item) {
		t.Errorf("rejected document proposed again: %s", q.Item)
	}
	// Negative answers must not change the hypothesis of a positive-only
	// learner.
	h, err := l.Hypothesis()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(h.Query, "r -> a+ || b") {
		t.Errorf("hypothesis changed on negative answer: %q", h.Query)
	}
}
