package session

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestManagerCreateGetDelete(t *testing.T) {
	m := NewManager(Config{})
	s, err := m.Create("join", joinTask, CreateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := m.Get(s.ID()); err != nil || got != s {
		t.Fatalf("Get = %v, %v", got, err)
	}
	if m.Len() != 1 {
		t.Errorf("Len = %d", m.Len())
	}
	if err := m.Delete(s.ID()); err != nil {
		t.Errorf("Delete = %v", err)
	}
	if err := m.Delete(s.ID()); !errors.Is(err, ErrNotFound) {
		t.Errorf("double Delete = %v, want ErrNotFound", err)
	}
	if _, err := m.Get(s.ID()); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get after delete = %v", err)
	}
	if m.Len() != 0 {
		t.Errorf("Len after delete = %d", m.Len())
	}
}

func TestManagerMaxSessions(t *testing.T) {
	m := NewManager(Config{MaxSessions: 2})
	for i := 0; i < 2; i++ {
		if _, err := m.Create("join", joinTask, CreateOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Create("join", joinTask, CreateOptions{}); !errors.Is(err, ErrTooManySessions) {
		t.Errorf("over-cap create = %v, want ErrTooManySessions", err)
	}
	// A failed parse must release its reservation: after freeing one slot
	// and burning a parse failure, a good create still fits.
	first, _ := m.Get(firstID(m))
	m.Delete(first.ID())
	if _, err := m.Create("join", "garbage", CreateOptions{}); err == nil || errors.Is(err, ErrTooManySessions) {
		t.Fatalf("garbage create = %v, want parse error", err)
	}
	if _, err := m.Create("join", joinTask, CreateOptions{}); err != nil {
		t.Errorf("parse failure consumed a session slot: %v", err)
	}
}

// firstID finds any live session id.
func firstID(m *Manager) string {
	for _, sh := range m.shards {
		sh.mu.Lock()
		for id := range sh.m {
			sh.mu.Unlock()
			return id
		}
		sh.mu.Unlock()
	}
	return ""
}

func TestAnswerBatchAndBudget(t *testing.T) {
	m := NewManager(Config{CostPerHIT: 0.05})
	s, err := m.Create("join", joinTask, CreateOptions{MaxCost: 0.12})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Answer([]Answer{
		{Item: json.RawMessage(`{"left":0,"right":0}`), Positive: true},
		{Item: json.RawMessage(`{"left":0,"right":1}`), Positive: false},
	}, ReconcileNone)
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 2 || res.HITs != 2 || res.Cost != 0.1 {
		t.Errorf("result = %+v", res)
	}
	// The next label would cost $0.15 > $0.12: budget refusal, atomically.
	_, err = s.Answer([]Answer{{Item: json.RawMessage(`{"left":1,"right":1}`), Positive: false}}, ReconcileNone)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("over-budget answer = %v", err)
	}
	if st := s.Status(); st.HITs != 2 || st.Answers != 2 {
		t.Errorf("refused batch still accounted: %+v", st)
	}
}

func TestAnswerMajorityReconciliation(t *testing.T) {
	m := NewManager(Config{CostPerHIT: 1})
	s, err := m.Create("join", joinTask, CreateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	item := json.RawMessage(`{"left":0,"right":0}`)
	reordered := json.RawMessage(`{"right":0,"left":0}`)
	res, err := s.Answer([]Answer{
		{Item: item, Positive: true},
		{Item: reordered, Positive: true},
		{Item: item, Positive: false}, // outvoted worker error
	}, ReconcileMajority)
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 1 {
		t.Errorf("Applied = %d, want 1 (three votes, one item)", res.Applied)
	}
	if res.HITs != 3 || res.Cost != 3 {
		t.Errorf("votes must all be paid: %+v", res)
	}
	// A tie must be rejected before anything is applied.
	_, err = s.Answer([]Answer{
		{Item: json.RawMessage(`{"left":1,"right":1}`), Positive: true},
		{Item: json.RawMessage(`{"left":1,"right":1}`), Positive: false},
	}, ReconcileMajority)
	if err == nil || errors.Is(err, ErrFailed) {
		t.Errorf("tie = %v, want plain error", err)
	}
	if st := s.Status(); st.Failed != "" {
		t.Errorf("tie marked session failed: %+v", st)
	}
}

// TestMalformedAnswersDoNotPoisonSession: input-validation failures reject
// the batch (uncharged, unapplied) and the dialogue continues; only genuine
// version-space inconsistency marks the session failed.
func TestMalformedAnswersDoNotPoisonSession(t *testing.T) {
	m := NewManager(Config{CostPerHIT: 1})
	s, err := m.Create("path", pathTask, CreateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	good := Answer{Item: json.RawMessage(`{"src":"lille","dst":"paris"}`), Positive: false}
	bad := Answer{Item: json.RawMessage(`{"src":"lile","dst":"paris"}`), Positive: false} // typo'd node
	if _, err := s.Answer([]Answer{good, bad}, ReconcileNone); err == nil || errors.Is(err, ErrFailed) {
		t.Fatalf("malformed batch = %v, want plain validation error", err)
	}
	st := s.Status()
	if st.Failed != "" {
		t.Fatalf("validation failure poisoned the session: %q", st.Failed)
	}
	if st.HITs != 0 || st.Answers != 0 {
		t.Errorf("rejected batch was charged or applied: %+v", st)
	}
	// The dialogue continues normally afterwards (it may converge, but it
	// must not be failed).
	if _, err := s.Answer([]Answer{good}, ReconcileNone); err != nil {
		t.Fatalf("session unusable after rejected batch: %v", err)
	}
	if _, _, err := s.Question(); err != nil {
		t.Errorf("Question after recovery: %v", err)
	}
	if h, err := s.Hypothesis(); err != nil || h.Query == "" {
		t.Errorf("Hypothesis after recovery: %+v, %v", h, err)
	}
}

func TestInconsistentAnswersFailSession(t *testing.T) {
	m := NewManager(Config{})
	s, err := m.Create("join", joinTask, CreateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	item := json.RawMessage(`{"left":0,"right":0}`)
	// Labeling the same pair positive after building a version space where
	// its agreement set was already excluded trips the consistency check.
	if _, err := s.Answer([]Answer{{Item: item, Positive: false}}, ReconcileNone); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Answer([]Answer{{Item: item, Positive: true}}, ReconcileNone); !errors.Is(err, ErrFailed) {
		t.Fatalf("inconsistent answer = %v, want ErrFailed", err)
	}
	if _, _, err := s.Question(); !errors.Is(err, ErrFailed) {
		t.Errorf("Question on failed session = %v", err)
	}
	if st := s.Status(); st.Failed == "" {
		t.Errorf("status not marked failed: %+v", st)
	}
}

// TestSnapshotResumeEquivalence checks the tentpole persistence property: a
// session snapshotted mid-dialogue and resumed elsewhere learns exactly the
// same query as one that ran uninterrupted.
func TestSnapshotResumeEquivalence(t *testing.T) {
	orcs := oracles(t)
	for model, task := range tasks() {
		oracle := orcs[model]

		// Uninterrupted control run.
		control, err := New(model, task)
		if err != nil {
			t.Fatal(err)
		}
		wantHyp, _ := drive(t, control, oracle)

		// Interrupted run: answer half the dialogue, snapshot, resume in a
		// different manager, finish there.
		m1 := NewManager(Config{CostPerHIT: 0.10})
		s1, err := m1.Create(model, task, CreateOptions{MaxCost: 100})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			q, ok, err := s1.Question()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			if _, err := s1.Answer([]Answer{{Item: q.Item, Positive: oracle(q.Item)}}, ReconcileNone); err != nil {
				t.Fatal(err)
			}
		}
		snap := s1.Snapshot()
		if snap.Model != model || snap.Task != task {
			t.Fatalf("%s snapshot lost identity: %+v", model, snap)
		}
		// Snapshots must survive a JSON round-trip (the wire format).
		wire, err := json.Marshal(snap)
		if err != nil {
			t.Fatal(err)
		}
		var back Snapshot
		if err := json.Unmarshal(wire, &back); err != nil {
			t.Fatal(err)
		}

		m2 := NewManager(Config{CostPerHIT: 0.10})
		s2, err := m2.Resume(back)
		if err != nil {
			t.Fatalf("%s resume: %v", model, err)
		}
		if got := s2.Status(); got.HITs != snap.HITs || got.Cost != snap.Cost {
			t.Errorf("%s resume lost accounting: %+v vs snapshot %+v", model, got, snap)
		}
		for {
			q, ok, err := s2.Question()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			if _, err := s2.Answer([]Answer{{Item: q.Item, Positive: oracle(q.Item)}}, ReconcileNone); err != nil {
				t.Fatal(err)
			}
		}
		gotHyp, err := s2.Hypothesis()
		if err != nil {
			t.Fatal(err)
		}
		if gotHyp.Query != wantHyp.Query {
			t.Errorf("%s: resumed session learned %q, uninterrupted learned %q",
				model, gotHyp.Query, wantHyp.Query)
		}
	}
}

func TestResumeConflicts(t *testing.T) {
	m := NewManager(Config{})
	s, err := m.Create("join", joinTask, CreateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Resume(s.Snapshot()); !errors.Is(err, ErrExists) {
		t.Errorf("resume over live session = %v, want ErrExists", err)
	}
	if _, err := m.Resume(Snapshot{Model: "join", Task: joinTask}); err == nil {
		t.Errorf("resume without id should fail")
	}
	bad := s.Snapshot()
	bad.ID = "sother"
	bad.Answers = []Answer{{Item: json.RawMessage(`{"left":99,"right":0}`), Positive: true}}
	if _, err := m.Resume(bad); err == nil {
		t.Errorf("resume with corrupt answer log should fail")
	}
}

// TestTTLEviction drives the clock by hand: sessions idle past the TTL are
// swept, recently touched ones survive.
func TestTTLEviction(t *testing.T) {
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}

	m := NewManager(Config{TTL: time.Minute, Clock: clock})
	idle, err := m.Create("join", joinTask, CreateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	busy, err := m.Create("join", joinTask, CreateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if n := m.SweepExpired(); n != 0 {
		t.Errorf("fresh sessions swept: %d", n)
	}
	advance(45 * time.Second)
	if _, _, err := busy.Question(); err != nil { // touches lastActive
		t.Fatal(err)
	}
	advance(30 * time.Second) // idle is now 75s idle, busy 30s
	if n := m.SweepExpired(); n != 1 {
		t.Fatalf("sweep removed %d, want 1", n)
	}
	if _, err := m.Get(idle.ID()); !errors.Is(err, ErrNotFound) {
		t.Errorf("idle session survived: %v", err)
	}
	if _, err := m.Get(busy.ID()); err != nil {
		t.Errorf("busy session evicted: %v", err)
	}
	if st := m.Stats(); st.Expired != 1 || st.Live != 1 {
		t.Errorf("stats = %+v", st)
	}
	// A stale pointer to the evicted session must refuse to apply labels —
	// the sweep/answer race cannot silently accept acknowledged answers
	// into an unreachable session.
	if _, err := idle.Answer([]Answer{{Item: json.RawMessage(`{"left":0,"right":0}`), Positive: true}}, ReconcileNone); !errors.Is(err, ErrNotFound) {
		t.Errorf("Answer on evicted session = %v, want ErrNotFound", err)
	}
	if _, _, err := idle.Question(); !errors.Is(err, ErrNotFound) {
		t.Errorf("Question on evicted session = %v, want ErrNotFound", err)
	}
	if _, err := idle.Hypothesis(); !errors.Is(err, ErrNotFound) {
		t.Errorf("Hypothesis on evicted session = %v, want ErrNotFound", err)
	}
}

// TestConcurrentLifecycleAcrossShards is the -race exercise: many goroutines
// create, converge, snapshot, and evict sessions simultaneously while a
// sweeper churns in the background.
func TestConcurrentLifecycleAcrossShards(t *testing.T) {
	m := NewManager(Config{Shards: 8, TTL: time.Hour})
	orcs := oracles(t)
	models := Models
	const workers = 32
	var wg sync.WaitGroup
	var converged atomic.Int64
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				m.SweepExpired()
				m.Stats()
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			model := models[w%len(models)]
			oracle := orcs[model]
			for i := 0; i < 3; i++ {
				s, err := m.Create(model, tasks()[model], CreateOptions{})
				if err != nil {
					t.Errorf("create: %v", err)
					return
				}
				for {
					q, ok, err := s.Question()
					if err != nil {
						t.Errorf("question: %v", err)
						return
					}
					if !ok {
						break
					}
					if _, err := s.Answer([]Answer{{Item: q.Item, Positive: oracle(q.Item)}}, ReconcileNone); err != nil {
						t.Errorf("answer: %v", err)
						return
					}
				}
				_ = s.Snapshot()
				if err := m.Delete(s.ID()); err != nil {
					t.Errorf("delete lost session %s: %v", s.ID(), err)
					return
				}
				converged.Add(1)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	if m.Len() != 0 {
		t.Errorf("leaked %d sessions", m.Len())
	}
	if converged.Load() != workers*3 {
		t.Errorf("converged %d of %d runs", converged.Load(), workers*3)
	}
}

// TestConcurrentAnswersOneSession hammers a single session from many
// goroutines; per-session locking must serialize the learner.
func TestConcurrentAnswersOneSession(t *testing.T) {
	m := NewManager(Config{})
	s, err := m.Create("join", joinTask, CreateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	oracle := oracles(t)["join"]
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				q, ok, err := s.Question()
				if err != nil || !ok {
					return // converged (or failed by a racing duplicate — checked below)
				}
				// Everyone answers truthfully, so racing duplicates stay
				// consistent.
				if _, err := s.Answer([]Answer{{Item: q.Item, Positive: oracle(q.Item)}}, ReconcileNone); err != nil {
					return
				}
			}
		}()
	}
	wg.Wait()
	if st := s.Status(); st.Failed != "" {
		t.Fatalf("truthful concurrent answers failed the session: %s", st.Failed)
	}
	h, err := s.Hypothesis()
	if err != nil {
		t.Fatal(err)
	}
	if h.Query != "city=place & id=buyer" {
		t.Errorf("learned %q under concurrency", h.Query)
	}
}

// failingJournal rejects every append — the disk-on-fire case.
type failingJournal struct{ err error }

func (f failingJournal) Append(Event) error { return f.err }

// TestJournalFailureAbortsMutations: a mutation whose write-ahead append
// fails must roll back completely (no session, no charge) and classify as
// ErrJournal, not as a client error.
func TestJournalFailureAbortsMutations(t *testing.T) {
	m := NewManager(Config{Journal: failingJournal{errors.New("disk on fire")}})
	if _, err := m.Create("join", joinTask, CreateOptions{}); !errors.Is(err, ErrJournal) {
		t.Fatalf("create with dead journal = %v, want ErrJournal", err)
	}
	if m.Len() != 0 {
		t.Errorf("failed create leaked a session: Len = %d", m.Len())
	}
	if st := m.Stats(); st.Created != 0 {
		t.Errorf("failed create counted: %+v", st)
	}

	// A healthy manager's session, resumed into the dead-journal manager.
	healthy := NewManager(Config{})
	s, err := healthy.Create("join", joinTask, CreateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Resume(s.Snapshot()); !errors.Is(err, ErrJournal) {
		t.Errorf("resume with dead journal = %v, want ErrJournal", err)
	}
	if m.Len() != 0 {
		t.Errorf("failed resume leaked a session: Len = %d", m.Len())
	}

	// Answers on a session that outlived its journal are rejected uncharged,
	// and deletes keep the session live.
	mgr2 := NewManager(Config{})
	s2, err := mgr2.Create("join", joinTask, CreateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mgr2.cfg.Journal = failingJournal{errors.New("disk on fire")}
	if _, err := s2.Answer([]Answer{{Item: json.RawMessage(`{"left":0,"right":0}`), Positive: true}}, ReconcileNone); !errors.Is(err, ErrJournal) {
		t.Errorf("answer with dead journal = %v, want ErrJournal", err)
	}
	if st := s2.Status(); st.HITs != 0 || st.Answers != 0 || st.Failed != "" {
		t.Errorf("failed answer charged or poisoned the session: %+v", st)
	}
	if err := mgr2.Delete(s2.ID()); !errors.Is(err, ErrJournal) {
		t.Errorf("delete with dead journal = %v, want ErrJournal", err)
	}
	if _, err := mgr2.Get(s2.ID()); err != nil {
		t.Errorf("failed delete evicted the session anyway: %v", err)
	}
}

func TestManagerStatsCount(t *testing.T) {
	m := NewManager(Config{})
	var ids []string
	for i := 0; i < 5; i++ {
		s, err := m.Create("path", pathTask, CreateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, s.ID())
	}
	for _, id := range ids[:2] {
		m.Delete(id)
	}
	st := m.Stats()
	if st.Created != 5 || st.Deleted != 2 || st.Live != 3 {
		t.Errorf("stats = %+v", st)
	}
	if fmt.Sprint(st.Live) != fmt.Sprint(m.Len()) {
		t.Errorf("Live %d != Len %d", st.Live, m.Len())
	}
}
