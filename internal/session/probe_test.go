package session

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// healableJournal is degraded until Compact has been called failuresLeft+1
// times; the first failuresLeft compactions fail (the disk is still broken),
// then one succeeds and clears the degraded state — the store's contract.
type healableJournal struct {
	mu           sync.Mutex
	degraded     bool
	since        time.Time
	failuresLeft int
	compactions  int
}

func (j *healableJournal) Append(Event) error { return nil }

func (j *healableJournal) Compact([]Snapshot) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.compactions++
	if j.failuresLeft > 0 {
		j.failuresLeft--
		return errors.New("still broken")
	}
	j.degraded = false
	j.since = time.Time{}
	return nil
}

func (j *healableJournal) Degraded() (string, time.Time, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.degraded {
		return "", time.Time{}, false
	}
	return "append failing: injected", j.since, true
}

func (j *healableJournal) snapshot() (int, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.compactions, j.degraded
}

func TestManagerDegradedSurfacesJournalState(t *testing.T) {
	// No journal, or a journal without the Degraded face: healthy.
	m := NewManager(Config{})
	if _, _, degraded := m.Degraded(); degraded {
		t.Fatal("journal-less manager reports degraded")
	}
	m = NewManager(Config{Journal: failingJournal{errors.New("x")}})
	if _, _, degraded := m.Degraded(); degraded {
		t.Fatal("plain journal reports degraded")
	}

	j := &healableJournal{degraded: true, since: time.Now()}
	m = NewManager(Config{Journal: j})
	reason, since, degraded := m.Degraded()
	if !degraded || reason == "" || since.IsZero() {
		t.Fatalf("Degraded() = (%q, %v, %v), want degraded with reason and since", reason, since, degraded)
	}
}

func TestJournalProbeHealsWithBackoff(t *testing.T) {
	j := &healableJournal{degraded: true, since: time.Now(), failuresLeft: 2}
	m := NewManager(Config{Journal: j})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := m.StartJournalProbe(ctx, 2*time.Millisecond, 20*time.Millisecond)

	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, degraded := j.snapshot(); !degraded {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("probe never healed the journal")
		}
		time.Sleep(time.Millisecond)
	}
	compactions, _ := j.snapshot()
	if compactions != 3 {
		t.Errorf("probe compacted %d times, want 3 (two failures, one heal)", compactions)
	}
	if m.JournalHeals() != 1 {
		t.Errorf("JournalHeals = %d, want 1", m.JournalHeals())
	}

	// The loop exits when the context is cancelled.
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("probe loop did not exit on cancel")
	}
}

func TestJournalProbeIdlesWhileHealthy(t *testing.T) {
	j := &healableJournal{}
	m := NewManager(Config{Journal: j})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := m.StartJournalProbe(ctx, time.Millisecond, 10*time.Millisecond)
	time.Sleep(20 * time.Millisecond)
	if compactions, _ := j.snapshot(); compactions != 0 {
		t.Errorf("probe compacted a healthy journal %d times", compactions)
	}
	cancel()
	<-done
}
