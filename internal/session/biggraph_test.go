package session

import (
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"querylearn/internal/graph"
	"querylearn/pkg/api"
)

// geoPathTask renders a generated geographic graph as a path task whose
// positive seed has a highway-then-roads witness word, so the candidate
// space is non-trivial. It returns the task text, the graph, and the seed.
func geoPathTask(t *testing.T, genSeed int64, nodes int) (string, *graph.Graph, graph.Pair) {
	t.Helper()
	g := graph.GenerateGeo(genSeed, nodes)
	seed, ok := findGeoSeed(g)
	if !ok {
		t.Skipf("no highway.road+ seed pair in geo graph (seed %d, %d nodes)", genSeed, nodes)
	}
	var b strings.Builder
	for _, e := range g.Triples() {
		fmt.Fprintf(&b, "edge %s %s %s\n", e.From, e.Label, e.To)
	}
	fmt.Fprintf(&b, "pos %s %s\n", g.Node(seed.Src), g.Node(seed.Dst))
	return b.String(), g, seed
}

// findGeoSeed walks the graph for a pair whose shortest word is one highway
// hop followed by 2..4 road hops — cheap (no all-pairs evaluation), so it
// works on graphs of any size.
func findGeoSeed(g *graph.Graph) (graph.Pair, bool) {
	n := g.NumNodes()
	for src := 0; src < n; src++ {
		var mid int
		found := false
		g.Out(src, func(label string, to int) {
			if !found && label == "highway" && to != src {
				mid, found = to, true
			}
		})
		if !found {
			continue
		}
		cur := mid
		for hop := 0; hop < 3; hop++ {
			next, ok := -1, false
			g.Out(cur, func(label string, to int) {
				if !ok && label == "road" && to != cur && to != src {
					next, ok = to, true
				}
			})
			if !ok {
				break
			}
			cur = next
			if hop == 0 {
				continue // want at least two road hops
			}
			w := g.ShortestWord(src, cur)
			if len(w) < 3 || w[0] != "highway" {
				continue
			}
			good := true
			for _, l := range w[1:] {
				if l != "road" {
					good = false
					break
				}
			}
			if good {
				return graph.Pair{Src: src, Dst: cur}, true
			}
		}
	}
	return graph.Pair{}, false
}

// geoOracle answers wire path items against a goal query on the graph.
func geoOracle(t *testing.T, g *graph.Graph, goal graph.PathQuery) func(json.RawMessage) bool {
	t.Helper()
	return func(item json.RawMessage) bool {
		var it struct{ Src, Dst string }
		mustUnmarshal(t, item, &it)
		src, dst := g.NodeIndex(it.Src), g.NodeIndex(it.Dst)
		if src < 0 || dst < 0 {
			t.Fatalf("question names unknown node: %s", item)
		}
		return g.Selects(goal, src, dst)
	}
}

// TestBigGraphSnapshotResumeEquivalence creates a path session on a graph
// well above the old 4096-node cap, answers part of the dialogue, snapshots
// it, resumes it in a fresh manager, and checks the resumed session is
// byte-for-byte the same dialogue: identical snapshot, hypothesis, and next
// question batch.
func TestBigGraphSnapshotResumeEquivalence(t *testing.T) {
	task, g, _ := geoPathTask(t, 17, 8000)
	lim := &api.PathLimits{PoolLimit: 300, PoolMaxLen: 4}
	mgr := NewManager(Config{})
	s, err := mgr.Create("path", task, CreateOptions{Limits: lim})
	if err != nil {
		t.Fatalf("create on 8000-node graph: %v", err)
	}
	oracle := geoOracle(t, g, graph.MustParsePathQuery("highway.road*"))
	// Answer two batches, leaving the dialogue mid-flight.
	for round := 0; round < 2; round++ {
		qs, err := s.Questions(4)
		if err != nil {
			t.Fatal(err)
		}
		if len(qs) == 0 {
			break
		}
		batch := make([]Answer, 0, len(qs))
		for _, q := range qs {
			batch = append(batch, Answer{Item: q.Item, Positive: oracle(q.Item)})
		}
		if _, err := s.Answer(batch, ReconcileNone); err != nil {
			t.Fatal(err)
		}
	}
	snap := s.Snapshot()
	if snap.Limits == nil || snap.Limits.PoolLimit != 300 {
		t.Fatalf("snapshot lost the per-session limits: %+v", snap.Limits)
	}

	mgr2 := NewManager(Config{})
	r, err := mgr2.Resume(snap)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !reflect.DeepEqual(r.Snapshot(), snap) {
		t.Fatal("resumed snapshot differs from the original")
	}
	h1, err := s.Hypothesis()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := r.Hypothesis()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(h1, h2) {
		t.Fatalf("hypotheses diverge after resume:\n%+v\n%+v", h1, h2)
	}
	q1, err := s.Questions(4)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := r.Questions(4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(q1, q2) {
		t.Fatalf("question batches diverge after resume:\n%+v\n%+v", q1, q2)
	}
}

// A path session snapshots its EFFECTIVE limits even when the create
// request specified none, so resuming on a daemon with different flag
// defaults rebuilds the identical question pool and version space.
func TestSnapshotStampsEffectiveLimits(t *testing.T) {
	task, g, _ := geoPathTask(t, 17, 600)
	mgrA := NewManager(Config{Limits: Limits{PathPoolLimit: 80, PathPoolMaxLen: 3}})
	s, err := mgrA.Create("path", task, CreateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	oracle := geoOracle(t, g, graph.MustParsePathQuery("highway.road*"))
	qs, err := s.Questions(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		if _, err := s.Answer([]Answer{{Item: q.Item, Positive: oracle(q.Item)}}, ReconcileNone); err != nil {
			t.Fatal(err)
		}
	}
	snap := s.Snapshot()
	if snap.Limits == nil || snap.Limits.PoolLimit != 80 || snap.Limits.PoolMaxLen != 3 {
		t.Fatalf("snapshot carries %+v, want the effective daemon limits stamped", snap.Limits)
	}
	// A manager with the (larger) default limits must rebuild the same
	// 80-pair pool, not its own default-shaped one.
	mgrB := NewManager(Config{})
	r, err := mgrB.Resume(snap)
	if err != nil {
		t.Fatal(err)
	}
	h1, err := s.Hypothesis()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := r.Hypothesis()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(h1, h2) {
		t.Fatalf("hypotheses diverge across daemons with different defaults:\n%+v\n%+v", h1, h2)
	}
	q1, err := s.Questions(4)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := r.Questions(4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(q1, q2) {
		t.Fatalf("question batches diverge across daemons:\n%+v\n%+v", q1, q2)
	}
}

// Per-request limits shape the session and are enforced against the
// manager's caps.
func TestCreateOptionsLimits(t *testing.T) {
	task, _, _ := geoPathTask(t, 17, 600)
	mgr := NewManager(Config{Limits: Limits{PathMaxNodes: 1000, PathPoolLimit: 100}})
	// Tightening works.
	if _, err := mgr.Create("path", task, CreateOptions{Limits: &api.PathLimits{MaxNodes: 800, PoolLimit: 50}}); err != nil {
		t.Fatalf("tightened create: %v", err)
	}
	// Exceeding the manager's caps is rejected.
	if _, err := mgr.Create("path", task, CreateOptions{Limits: &api.PathLimits{MaxNodes: 5000}}); err == nil {
		t.Fatal("create above the manager's max_nodes cap succeeded")
	}
	if _, err := mgr.Create("path", task, CreateOptions{Limits: &api.PathLimits{PoolLimit: 101}}); err == nil {
		t.Fatal("create above the manager's pool_limit cap succeeded")
	}
	// Negative limits are rejected.
	if _, err := mgr.Create("path", task, CreateOptions{Limits: &api.PathLimits{MaxNodes: -1}}); err == nil {
		t.Fatal("negative limits accepted")
	}
	// A graph above a tightened max_nodes is refused.
	if _, err := mgr.Create("path", task, CreateOptions{Limits: &api.PathLimits{MaxNodes: 100}}); err == nil ||
		!strings.Contains(err.Error(), "session limit") {
		t.Fatalf("graph above tightened cap = %v, want node-limit error", err)
	}
	// An untrusted resume cannot smuggle limits past the caps.
	s, err := mgr.Create("path", task, CreateOptions{Limits: &api.PathLimits{PoolLimit: 50}})
	if err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	snap.ID = "sforged"
	snap.Limits = &api.PathLimits{MaxNodes: 1 << 30}
	if _, err := mgr.Resume(snap); err == nil {
		t.Fatal("resume smuggled limits past the manager's caps")
	}
}
