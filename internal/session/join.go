package session

import (
	"encoding/json"
	"fmt"
	"strings"

	"querylearn/internal/core"
	"querylearn/internal/relational"
	"querylearn/internal/rellearn"
)

// joinItem addresses a tuple pair on the wire by row indexes into the two
// relations of the task.
type joinItem struct {
	Left  int `json:"left"`
	Right int `json:"right"`
}

// joinLearner adapts the rellearn interactive join session. The version
// space is the join-predicate lattice; questions are the informative tuple
// pairs, proposed in deterministic (left, right) scan order.
type joinLearner struct {
	decodeCache
	u    *rellearn.Universe
	sess *rellearn.Session
}

func newJoinLearner(src string) (*joinLearner, error) {
	task, err := core.ParseJoinTask(src)
	if err != nil {
		return nil, err
	}
	if task.Semijoin {
		return nil, fmt.Errorf("session: semijoin tasks are batch-only (the consistency problem is NP-complete); use cmd/querylearn")
	}
	u := rellearn.NewUniverse(task.Left, task.Right)
	l := &joinLearner{u: u, sess: rellearn.NewSession(u)}
	for i, ex := range task.Examples {
		if err := l.checkRange(ex.Left, ex.Right); err != nil {
			return nil, fmt.Errorf("session: join task example %d: %w", i, err)
		}
		if err := l.sess.Record(ex.Left, ex.Right, ex.Positive); err != nil {
			return nil, fmt.Errorf("session: replaying join task example %d: %w", i, err)
		}
	}
	return l, nil
}

func (l *joinLearner) checkRange(li, ri int) error {
	if li < 0 || li >= l.u.Left.Len() {
		return fmt.Errorf("left index %d out of range (relation has %d tuples)", li, l.u.Left.Len())
	}
	if ri < 0 || ri >= l.u.Right.Len() {
		return fmt.Errorf("right index %d out of range (relation has %d tuples)", ri, l.u.Right.Len())
	}
	return nil
}

// Model implements Learner.
func (l *joinLearner) Model() string { return "join" }

// Propose implements Learner: the first k informative tuple pairs in
// deterministic (left, right) scan order. The limited scan still counts
// every informative pair (the wire's Remaining field) but materializes
// agreement sets only for the requested batch.
func (l *joinLearner) Propose(k int) ([]Question, error) {
	lim := k
	if lim < 1 {
		lim = 1
	}
	cands, total := l.sess.CandidatesLimited(lim)
	if total == 0 {
		return nil, nil
	}
	qs := make([]Question, 0, clampBatch(k, total))
	for _, c := range cands[:clampBatch(k, total)] {
		item, err := json.Marshal(joinItem{Left: c.Left, Right: c.Right})
		if err != nil {
			return nil, err
		}
		qs = append(qs, Question{
			Model: "join",
			Item:  item,
			Prompt: fmt.Sprintf("should %s tuple %d (%s) join with %s tuple %d (%s)?",
				l.u.Left.Name, c.Left, strings.Join(l.u.Left.Tuple(c.Left), ","),
				l.u.Right.Name, c.Right, strings.Join(l.u.Right.Tuple(c.Right), ",")),
			Remaining: total,
		})
	}
	return qs, nil
}

// joinOpen counts the informative pairs while materializing at most one
// agreement set — the convergence probe.
func joinOpen(sess *rellearn.Session) int {
	_, total := sess.CandidatesLimited(1)
	return total
}

// decode unmarshals and range-checks an item.
func (l *joinLearner) decode(raw json.RawMessage) (joinItem, error) {
	it, err := decodeItemCached[joinItem](&l.decodeCache, "join", raw)
	if err != nil {
		return joinItem{}, err
	}
	if err := l.checkRange(it.Left, it.Right); err != nil {
		return joinItem{}, err
	}
	return it, nil
}

// Validate implements Learner.
func (l *joinLearner) Validate(raw json.RawMessage) error {
	_, err := l.decode(raw)
	return err
}

// Record implements Learner.
func (l *joinLearner) Record(raw json.RawMessage, positive bool) error {
	it, err := l.decode(raw)
	if err != nil {
		return err
	}
	if err := l.sess.Record(it.Left, it.Right, positive); err != nil {
		return err
	}
	l.sess.Questions++
	return nil
}

// Hypothesis implements Learner.
func (l *joinLearner) Hypothesis() (Hypothesis, error) {
	pred := relational.SortPairs(l.u.Decode(l.sess.Result()))
	parts := make([]string, len(pred))
	for i, p := range pred {
		parts[i] = p.String()
	}
	query := strings.Join(parts, " & ")
	if query == "" {
		query = "true" // empty predicate: the cross product
	}
	return Hypothesis{
		Model:     "join",
		Query:     query,
		Converged: joinOpen(l.sess) == 0,
		Detail: map[string]string{
			"attr_pairs": fmt.Sprint(len(pred)),
			"questions":  fmt.Sprint(l.sess.Questions),
		},
	}, nil
}
