// Package session hosts long-lived interactive learning dialogues — the
// paper's central scenario of a user (or paid crowd) labeling one example at
// a time while the learner shrinks its version space. Where interact.Run
// drives that loop in-process and start-to-finish, this package splits it at
// the question/answer boundary so a session can survive the human-scale
// latency between the two: a unified Learner interface over all four model
// learners (twig, join, path, schema), a concurrent sharded Manager of live
// sessions with TTL eviction and crowd-budget accounting, and JSON
// snapshot/resume so a dialogue can be persisted and rehydrated mid-flight.
// Every state mutation flows through the Manager's single commit path as an
// Event, which an optional Journal (internal/store's write-ahead log)
// observes write-ahead; boot-time recovery replays journaled state back in
// through the same Resume machinery. internal/server exposes the whole
// thing over HTTP.
package session

import (
	"bytes"
	"encoding/json"
	"fmt"

	"querylearn/internal/obs"
	"querylearn/internal/plan"
	"querylearn/pkg/api"
)

// The dialogue vocabulary is the wire protocol: pkg/api owns the type
// definitions (shared with pkg/client and external consumers) and this
// package aliases them, so the journal format, the HTTP bodies, and the
// in-memory dialogue state are one set of types.
type (
	// Question is one item a learner wants labeled.
	Question = api.Question
	// Hypothesis is a snapshot of the current best hypothesis of a session.
	Hypothesis = api.Hypothesis
)

// Learner is the unified interactive contract the Manager hosts: propose
// informative questions, record an answer, snapshot the current hypothesis.
// Implementations are NOT safe for concurrent use; the Manager serializes
// access per session.
type Learner interface {
	// Model names the hypothesis class: "twig", "join", "path" or "schema".
	Model() string
	// Propose returns up to k pairwise-distinct informative items for
	// parallel (crowd) dispatch, in the learner's deterministic proposal
	// order. k < 1 is treated as 1. An empty result means the session has
	// converged: every item is either labeled or uninformative. Each
	// returned Question carries the same Remaining count — the open
	// informative items at proposal time.
	Propose(k int) ([]Question, error)
	// Validate checks that an item decodes and addresses something that
	// exists (a corpus node, tuple indexes in range, known graph nodes)
	// WITHOUT touching the version space. The Manager validates a whole
	// batch before applying any of it, so malformed client input is
	// rejected cleanly instead of poisoning the session.
	Validate(item json.RawMessage) error
	// Record applies a user answer to the item encoded by a previous
	// question (any informative item is acceptable, not only the last
	// proposed one — batched answers arrive out of order). After a
	// passing Validate, an error here means the answers are genuinely
	// inconsistent: no hypothesis in the class fits them.
	Record(item json.RawMessage, positive bool) error
	// Hypothesis returns the current best hypothesis.
	Hypothesis() (Hypothesis, error)
}

// PlanReporter is the optional Learner face of planner attribution: a
// learner whose evaluation core records its planning work (internal/plan)
// exposes the recorder so the manager can fold it into request traces.
type PlanReporter interface {
	PlanRecorder() *plan.Recorder
}

// drainPlan empties the learner's planner recorder — if it has one — into
// the trace as a "plan" phase. Draining happens even on a nil trace so work
// from an untraced request is never misattributed to the next traced one;
// the phase flows from the trace into querylearn_phase_seconds and the
// slow-request log like every other phase.
func drainPlan(l Learner, tr *obs.Trace) {
	pr, ok := l.(PlanReporter)
	if !ok {
		return
	}
	d, _, _ := pr.PlanRecorder().Drain()
	tr.Add("plan", d)
}

// Next proposes a single question — the k=1 convenience over Propose.
// ok=false means the session has converged.
func Next(l Learner) (q Question, ok bool, err error) {
	qs, err := l.Propose(1)
	if err != nil || len(qs) == 0 {
		return Question{}, false, err
	}
	return qs[0], true, nil
}

// clampBatch normalizes a Propose k against the open-item count.
func clampBatch(k, open int) int {
	if k < 1 {
		k = 1
	}
	if k > open {
		k = open
	}
	return k
}

// Models lists the supported model names in stable order.
var Models = []string{"twig", "join", "path", "schema"}

// Default session limits. The path engine's version space is pool-projected
// (O(candidates · pool) bits, pool-restricted BFS at creation), so the node
// cap defaults to a million — a guard against absurd inputs, not the dense
// n²-bitset ceiling of 4096 nodes that earlier versions enforced.
const (
	DefaultPathMaxNodes   = 1 << 20
	DefaultPathPoolLimit  = 2000
	DefaultPathPoolMaxLen = 5
)

// Limits bounds the resources one session may claim. The zero value means
// "use the defaults"; a daemon overrides them globally via Config.Limits and
// a client tightens them per request via CreateOptions.Limits.
type Limits struct {
	// PathMaxNodes caps a path task's graph size (nodes).
	PathMaxNodes int
	// PathPoolLimit caps the candidate question pool (pairs).
	PathPoolLimit int
	// PathPoolMaxLen caps pool pairs' shortest-path length (hops).
	PathPoolMaxLen int
}

func (l Limits) withDefaults() Limits {
	if l.PathMaxNodes <= 0 {
		l.PathMaxNodes = DefaultPathMaxNodes
	}
	if l.PathPoolLimit <= 0 {
		l.PathPoolLimit = DefaultPathPoolLimit
	}
	if l.PathPoolMaxLen <= 0 {
		l.PathPoolMaxLen = DefaultPathPoolMaxLen
	}
	return l
}

// wire renders the effective limits as the api type, for stamping into
// snapshots and journal events: a persisted session records the concrete
// limits it was built under, so resuming on a daemon with different flag
// defaults still rebuilds the identical question pool and version space.
func (l Limits) wire() *api.PathLimits {
	l = l.withDefaults()
	return &api.PathLimits{
		MaxNodes:   l.PathMaxNodes,
		PoolLimit:  l.PathPoolLimit,
		PoolMaxLen: l.PathPoolMaxLen,
	}
}

// Merge applies a client's per-request limits on top of the server's. When
// enforceCaps is set (untrusted input: create requests, client resumes) a
// request may only tighten — values above the server's own limits are
// rejected; boot-time recovery replays with enforceCaps false so lowering a
// daemon flag cannot destroy journaled sessions.
func (l Limits) Merge(req *api.PathLimits, enforceCaps bool) (Limits, error) {
	l = l.withDefaults()
	if req == nil {
		return l, nil
	}
	if req.MaxNodes < 0 || req.PoolLimit < 0 || req.PoolMaxLen < 0 {
		return l, fmt.Errorf("session: limits must be non-negative (got max_nodes=%d pool_limit=%d pool_max_len=%d)",
			req.MaxNodes, req.PoolLimit, req.PoolMaxLen)
	}
	if enforceCaps {
		if req.MaxNodes > l.PathMaxNodes {
			return l, fmt.Errorf("session: requested max_nodes %d exceeds the server limit %d", req.MaxNodes, l.PathMaxNodes)
		}
		if req.PoolLimit > l.PathPoolLimit {
			return l, fmt.Errorf("session: requested pool_limit %d exceeds the server limit %d", req.PoolLimit, l.PathPoolLimit)
		}
		if req.PoolMaxLen > l.PathPoolMaxLen {
			return l, fmt.Errorf("session: requested pool_max_len %d exceeds the server limit %d", req.PoolMaxLen, l.PathPoolMaxLen)
		}
	}
	if req.MaxNodes > 0 {
		l.PathMaxNodes = req.MaxNodes
	}
	if req.PoolLimit > 0 {
		l.PathPoolLimit = req.PoolLimit
	}
	if req.PoolMaxLen > 0 {
		l.PathPoolMaxLen = req.PoolMaxLen
	}
	return l, nil
}

// New builds a Learner of the given model from a task-file body (the same
// line-oriented format cmd/querylearn reads, documented in
// internal/core/task.go) under the default limits. The task's own examples
// are replayed into the fresh session, so a task file doubles as a session
// seed.
func New(model, task string) (Learner, error) {
	return NewLimited(model, task, Limits{})
}

// NewLimited is New under explicit resource limits (zero fields mean the
// defaults).
func NewLimited(model, task string, lim Limits) (Learner, error) {
	lim = lim.withDefaults()
	switch model {
	case "twig":
		return newTwigLearner(task)
	case "join":
		return newJoinLearner(task)
	case "path":
		return newPathLearner(task, lim)
	case "schema":
		return newSchemaLearner(task)
	}
	return nil, fmt.Errorf("session: unknown model %q (want twig, join, path, or schema)", model)
}

// ItemKey canonicalizes an item encoding for equality grouping (majority
// vote reconciliation): JSON objects with the same fields in any key order
// map to the same key.
func ItemKey(raw json.RawMessage) (string, error) {
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		return "", fmt.Errorf("session: bad item: %w", err)
	}
	b, err := json.Marshal(v) // map keys marshal sorted
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// decodeCache is a learner's handle on the manager's item interner, used to
// memoize decodeItem results. Learners embed it; the Manager injects the
// interner after construction, so learners built standalone (New) simply
// decode every time. The zero value is a valid always-miss cache.
type decodeCache struct{ in *itemInterner }

func (c *decodeCache) setDecodeCache(in *itemInterner) { c.in = in }

// decodeItemCached is decodeItem memoized through the interner: the typed
// struct an item decodes to is a pure function of (model, bytes), so a
// dialogue relabeling its small question vocabulary decodes each item once
// manager-wide instead of once per Validate and once per Record. Cached
// values MUST be plain value structs — task-dependent checks (index ranges,
// node existence) stay with the caller.
func decodeItemCached[T any](c *decodeCache, model string, raw json.RawMessage) (T, error) {
	if v, ok := c.in.getDecoded(model, raw); ok {
		return v.(T), nil
	}
	var it T
	if err := decodeItem(raw, &it); err != nil {
		return it, err
	}
	c.in.putDecoded(model, raw, it)
	return it, nil
}

// decodeItem unmarshals an item strictly, rejecting unknown fields so a
// mis-modeled answer (a path item sent to a join session) fails loudly
// instead of zero-valuing.
func decodeItem(raw json.RawMessage, into any) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return fmt.Errorf("session: bad item %s: %w", compact(raw), err)
	}
	return nil
}

// compact renders an item for error messages without newlines.
func compact(raw json.RawMessage) string {
	var v any
	if json.Unmarshal(raw, &v) != nil {
		return string(raw)
	}
	b, err := json.Marshal(v)
	if err != nil {
		return string(raw)
	}
	return string(b)
}
