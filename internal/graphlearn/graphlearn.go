// Package graphlearn implements learning of path queries on graph
// databases from positive and negative node-pair examples, and the
// interactive framework of §3's geographic use case: "the user has to
// select two vertices from the graph [...] Our algorithms compute what
// paths the user should be asked to label (as positive or negative example)
// in order to gather as many information as possible with few
// interactions", including the workload prior ("use query workload
// techniques to take advantage of the previously inferred paths").
//
// The hypothesis class is the path-query class of internal/graph:
// concatenations of edge labels and starred labels. The learner
// generalizes the shortest witness words of the positive pairs by run
// alignment; the interactive session maintains a finite version space of
// candidate generalizations of the seed example and asks only pairs the
// remaining candidates disagree on.
package graphlearn

import (
	"fmt"
	"sort"

	"querylearn/internal/graph"
)

// Example is a labeled node pair.
type Example struct {
	Src, Dst int
	Positive bool
}

// run is a maximal block of equal consecutive labels.
type run struct {
	label string
	count int
	star  bool // the block additionally admits arbitrarily many repeats
}

func runsOf(word []string) []run {
	var out []run
	for _, l := range word {
		if n := len(out); n > 0 && out[n-1].label == l {
			out[n-1].count++
			continue
		}
		out = append(out, run{label: l, count: 1})
	}
	return out
}

func runsToQuery(rs []run) graph.PathQuery {
	var q graph.PathQuery
	for _, r := range rs {
		for i := 0; i < r.count; i++ {
			q.Atoms = append(q.Atoms, graph.Atom{Label: r.label})
		}
		if r.star {
			q.Atoms = append(q.Atoms, graph.Atom{Label: r.label, Star: true})
		}
	}
	return q
}

func queryToRuns(q graph.PathQuery) []run {
	var out []run
	for _, a := range q.Atoms {
		n := len(out)
		if n > 0 && out[n-1].label == a.Label && !out[n-1].star {
			if a.Star {
				out[n-1].star = true
			} else {
				out[n-1].count++
			}
			continue
		}
		if a.Star {
			out = append(out, run{label: a.Label, count: 0, star: true})
		} else {
			out = append(out, run{label: a.Label, count: 1})
		}
	}
	return out
}

// generalizeRuns aligns two run sequences and returns the most specific run
// sequence whose language includes both inputs' languages: matched runs
// keep the minimum fixed count (starred when counts differ or either input
// is starred), unmatched runs become pure stars (matching zero occurrences
// on the other side).
func generalizeRuns(a, b []run) []run {
	// LCS over labels, scored to prefer more matched runs.
	n, m := len(a), len(b)
	dp := make([][]int, n+1)
	for i := range dp {
		dp[i] = make([]int, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			best := dp[i+1][j] // skip a[i]
			if dp[i][j+1] > best {
				best = dp[i][j+1] // skip b[j]
			}
			if a[i].label == b[j].label && dp[i+1][j+1]+1 > best {
				best = dp[i+1][j+1] + 1
			}
			dp[i][j] = best
		}
	}
	var out []run
	i, j := 0, 0
	for i < n && j < m {
		if a[i].label == b[j].label && dp[i][j] == dp[i+1][j+1]+1 {
			count := a[i].count
			if b[j].count < count {
				count = b[j].count
			}
			star := a[i].star || b[j].star || a[i].count != b[j].count
			out = append(out, run{label: a[i].label, count: count, star: star})
			i++
			j++
			continue
		}
		if dp[i][j] == dp[i+1][j] {
			out = append(out, run{label: a[i].label, count: 0, star: true})
			i++
		} else {
			out = append(out, run{label: b[j].label, count: 0, star: true})
			j++
		}
	}
	for ; i < n; i++ {
		out = append(out, run{label: a[i].label, count: 0, star: true})
	}
	for ; j < m; j++ {
		out = append(out, run{label: b[j].label, count: 0, star: true})
	}
	return mergeAdjacent(out)
}

// mergeAdjacent fuses neighbouring runs with equal labels (created by
// star-demotion) to keep the query canonical.
func mergeAdjacent(rs []run) []run {
	var out []run
	for _, r := range rs {
		if n := len(out); n > 0 && out[n-1].label == r.label {
			out[n-1].count += r.count
			out[n-1].star = out[n-1].star || r.star
			continue
		}
		out = append(out, r)
	}
	return out
}

// GeneralizeWords returns the most specific path query (within the class)
// accepting every input word.
func GeneralizeWords(words [][]string) (graph.PathQuery, error) {
	if len(words) == 0 {
		return graph.PathQuery{}, fmt.Errorf("graphlearn: no words to generalize")
	}
	acc := runsOf(words[0])
	for _, w := range words[1:] {
		acc = generalizeRuns(acc, runsOf(w))
	}
	return runsToQuery(acc), nil
}

// Learn generalizes the shortest witness words of the positive examples and
// verifies consistency with the negatives. The returned query selects every
// positive pair; ErrInconsistent is returned when it also selects a
// negative (the class cannot separate the examples from these witnesses).
func Learn(g *graph.Graph, examples []Example) (graph.PathQuery, error) {
	var words [][]string
	var q graph.PathQuery
	for _, e := range examples {
		if !e.Positive {
			continue
		}
		w := g.ShortestWord(e.Src, e.Dst)
		if w == nil {
			return q, fmt.Errorf("graphlearn: positive pair (%s,%s) is not connected",
				g.Node(e.Src), g.Node(e.Dst))
		}
		words = append(words, w)
	}
	if len(words) == 0 {
		return q, fmt.Errorf("graphlearn: need at least one positive example")
	}
	q, err := GeneralizeWords(words)
	if err != nil {
		return q, err
	}
	for _, e := range examples {
		if !e.Positive && g.Selects(q, e.Src, e.Dst) {
			return q, fmt.Errorf("graphlearn: %w: learned %s selects negative (%s,%s)",
				ErrInconsistent, q, g.Node(e.Src), g.Node(e.Dst))
		}
	}
	return q, nil
}

// ErrInconsistent marks example sets the generalization cannot separate.
var ErrInconsistent = fmt.Errorf("no consistent path query")

// CandidatesFromWord enumerates the finite hypothesis space the interactive
// session works over: for each run (l, c) of the seed witness word, either
// the exact block l^c or a generalization l^j.l* with 0 <= j <= c. The
// space contains the seed word itself and every star-generalization of it.
func CandidatesFromWord(word []string) []graph.PathQuery {
	rs := runsOf(word)
	var out []graph.PathQuery
	var rec func(i int, acc []run)
	rec = func(i int, acc []run) {
		if i == len(rs) {
			out = append(out, runsToQuery(mergeAdjacent(append([]run(nil), acc...))))
			return
		}
		r := rs[i]
		rec(i+1, append(acc, r)) // exact
		for j := 0; j <= r.count; j++ {
			rec(i+1, append(acc, run{label: r.label, count: j, star: true}))
		}
	}
	rec(0, nil)
	// Dedupe by string.
	seen := map[string]bool{}
	var uniq []graph.PathQuery
	for _, q := range out {
		if !seen[q.String()] {
			seen[q.String()] = true
			uniq = append(uniq, q)
		}
	}
	sort.Slice(uniq, func(i, j int) bool { return uniq[i].String() < uniq[j].String() })
	return uniq
}
