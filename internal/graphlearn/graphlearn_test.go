package graphlearn

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"querylearn/internal/graph"
)

func words(ss ...string) [][]string {
	var out [][]string
	for _, s := range ss {
		if s == "" {
			out = append(out, []string{})
			continue
		}
		out = append(out, strings.Split(s, ","))
	}
	return out
}

func TestGeneralizeWordsIdentical(t *testing.T) {
	q, err := GeneralizeWords(words("a,b", "a,b"))
	if err != nil {
		t.Fatal(err)
	}
	if q.String() != "a.b" {
		t.Errorf("q = %s, want a.b", q)
	}
}

func TestGeneralizeWordsRepeats(t *testing.T) {
	q, err := GeneralizeWords(words("a,a,a,b", "a,b"))
	if err != nil {
		t.Fatal(err)
	}
	// Most specific: a.a*.b (at least one a, then b).
	if q.String() != "a.a*.b" {
		t.Errorf("q = %s, want a.a*.b", q)
	}
	for _, w := range words("a,b", "a,a,a,b", "a,a,b") {
		if !q.MatchWord(w) {
			t.Errorf("%s should match %v", q, w)
		}
	}
	if q.MatchWord(words("b")[0]) {
		t.Errorf("%s should not match b", q)
	}
}

func TestGeneralizeWordsInsertion(t *testing.T) {
	// a,c vs a,b,c: the b run is unmatched -> b*.
	q, err := GeneralizeWords(words("a,c", "a,b,c"))
	if err != nil {
		t.Fatal(err)
	}
	if q.String() != "a.b*.c" {
		t.Errorf("q = %s, want a.b*.c", q)
	}
}

func TestGeneralizeWordsAcceptsInputs(t *testing.T) {
	// Whatever the alignment, the result must accept every input word.
	cases := [][][]string{
		words("a,b,a", "b,a,b"),
		words("a,a", "b,b"),
		words("highway,road", "road"),
		words("a", "a,b,c,a"),
		words("", "a"),
	}
	for _, ws := range cases {
		q, err := GeneralizeWords(ws)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range ws {
			if !q.MatchWord(w) {
				t.Errorf("generalization %s of %v rejects %v", q, ws, w)
			}
		}
	}
}

func TestLearnOnGeoGraph(t *testing.T) {
	g := graph.GenerateGeo(5, 25)
	goal := graph.MustParsePathQuery("highway.highway*")
	pairs := g.Eval(goal)
	if len(pairs) < 2 {
		t.Skip("geo graph too sparse for this seed")
	}
	exs := []Example{
		{Src: pairs[0].Src, Dst: pairs[0].Dst, Positive: true},
		{Src: pairs[1].Src, Dst: pairs[1].Dst, Positive: true},
	}
	q, err := Learn(g, exs)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range exs {
		if !g.Selects(q, e.Src, e.Dst) {
			t.Errorf("learned %s misses positive (%d,%d)", q, e.Src, e.Dst)
		}
	}
}

func TestLearnUnreachablePositive(t *testing.T) {
	g := graph.New()
	g.AddNode("x")
	g.AddNode("y")
	if _, err := Learn(g, []Example{{Src: 0, Dst: 1, Positive: true}}); err == nil {
		t.Errorf("unreachable positive must error")
	}
}

func TestLearnInconsistentNegative(t *testing.T) {
	g := graph.New()
	g.AddEdge("a", "r", "b")
	exs := []Example{
		{Src: 0, Dst: 1, Positive: true},
		{Src: 0, Dst: 1, Positive: false},
	}
	if _, err := Learn(g, exs); err == nil {
		t.Errorf("contradictory labels must error")
	}
}

func TestCandidatesFromWord(t *testing.T) {
	cands := CandidatesFromWord([]string{"a", "a", "b"})
	// Must contain the exact word, the starred generalizations, and the
	// goal-shaped a.a*.b.
	want := map[string]bool{"a.a.b": false, "a.a*.b": false, "a*.b*": false}
	for _, q := range cands {
		if _, ok := want[q.String()]; ok {
			want[q.String()] = true
		}
	}
	for k, seen := range want {
		if !seen {
			t.Errorf("candidate %s missing from %d candidates", k, len(cands))
		}
	}
	// All candidates accept the seed word.
	for _, q := range cands {
		if !q.MatchWord([]string{"a", "a", "b"}) {
			t.Errorf("candidate %s rejects the seed word", q)
		}
	}
}

func TestInteractiveIdentifiesGoal(t *testing.T) {
	g := graph.GenerateGeo(11, 30)
	goal := graph.MustParsePathQuery("highway.highway*")
	goalPairs := g.Eval(goal)
	if len(goalPairs) == 0 {
		t.Skip("no highway pairs for this seed")
	}
	// Seed: a pair whose shortest word is pure highways, so the goal is
	// in the candidate space.
	var seed graph.Pair
	found := false
	for _, p := range goalPairs {
		w := g.ShortestWord(p.Src, p.Dst)
		pure := len(w) >= 2
		for _, l := range w {
			if l != "highway" {
				pure = false
			}
		}
		if pure {
			seed, found = p, true
			break
		}
	}
	if !found {
		t.Skip("no multi-hop pure-highway seed for this graph")
	}
	pool := DefaultPool(g, 4, 500)
	oracle := GoalOracle{G: g, Goal: goal}
	for _, strat := range []Strategy{
		RandomStrategy{Rng: rand.New(rand.NewSource(3))},
		SplitStrategy{},
	} {
		stats, err := Run(g, seed, pool, oracle, strat)
		if err != nil {
			t.Fatalf("%s: %v", strat.Name(), err)
		}
		// The learned query must agree with the goal on the pool.
		for _, p := range pool {
			if g.Selects(stats.Learned, p.Src, p.Dst) != g.Selects(goal, p.Src, p.Dst) {
				t.Errorf("%s: learned %s disagrees with goal %s on %v",
					strat.Name(), stats.Learned, goal, p)
				break
			}
		}
		if stats.Questions > stats.PoolSize {
			t.Errorf("%s: more questions than pool pairs", strat.Name())
		}
	}
}

func TestSplitBeatsRandomOnAverage(t *testing.T) {
	g := graph.GenerateGeo(11, 30)
	goal := graph.MustParsePathQuery("highway.highway*")
	var seed graph.Pair
	found := false
	for _, p := range g.Eval(goal) {
		w := g.ShortestWord(p.Src, p.Dst)
		if len(w) >= 2 {
			pure := true
			for _, l := range w {
				if l != "highway" {
					pure = false
				}
			}
			if pure {
				seed, found = p, true
				break
			}
		}
	}
	if !found {
		t.Skip("no suitable seed")
	}
	pool := DefaultPool(g, 4, 500)
	oracle := GoalOracle{G: g, Goal: goal}
	split, err := Run(g, seed, pool, oracle, SplitStrategy{})
	if err != nil {
		t.Fatal(err)
	}
	totalRandom := 0
	runs := 5
	for i := 0; i < runs; i++ {
		r, err := Run(g, seed, pool, oracle, RandomStrategy{Rng: rand.New(rand.NewSource(int64(i)))})
		if err != nil {
			t.Fatal(err)
		}
		totalRandom += r.Questions
	}
	avgRandom := float64(totalRandom) / float64(runs)
	t.Logf("split=%d avg-random=%.1f", split.Questions, avgRandom)
	if float64(split.Questions) > 2*avgRandom+2 {
		t.Errorf("split strategy much worse than random: %d vs %.1f", split.Questions, avgRandom)
	}
}

func TestPriorStrategy(t *testing.T) {
	g := graph.GenerateGeo(11, 30)
	goal := graph.MustParsePathQuery("highway.highway*")
	var seed graph.Pair
	found := false
	for _, p := range g.Eval(goal) {
		w := g.ShortestWord(p.Src, p.Dst)
		if len(w) >= 2 {
			pure := true
			for _, l := range w {
				if l != "highway" {
					pure = false
				}
			}
			if pure {
				seed, found = p, true
				break
			}
		}
	}
	if !found {
		t.Skip("no suitable seed")
	}
	pool := DefaultPool(g, 4, 500)
	oracle := GoalOracle{G: g, Goal: goal}
	// Workload correlated with the goal.
	prior := &PriorStrategy{G: g, Workload: []graph.PathQuery{goal}, Fallback: SplitStrategy{}}
	stats, err := Run(g, seed, pool, oracle, prior)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pool {
		if g.Selects(stats.Learned, p.Src, p.Dst) != g.Selects(goal, p.Src, p.Dst) {
			t.Errorf("prior: learned %s disagrees with goal on %v", stats.Learned, p)
			break
		}
	}
}

func TestQuickGeneralizationAcceptsInputs(t *testing.T) {
	labels := []string{"a", "b"}
	genWord := func(seed int64) []string {
		if seed < 0 {
			seed = -seed
		}
		n := int(seed % 5)
		w := make([]string, n)
		s := seed
		for i := range w {
			w[i] = labels[int(s)%2]
			s = s/2 + 3
		}
		return w
	}
	f := func(s1, s2 int64) bool {
		w1, w2 := genWord(s1), genWord(s2)
		q, err := GeneralizeWords([][]string{w1, w2})
		if err != nil {
			return false
		}
		if !q.MatchWord(w1) || !q.MatchWord(w2) {
			t.Logf("q=%s w1=%v w2=%v", q, w1, w2)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickSessionNeverExceedsPool(t *testing.T) {
	f := func(seed int64) bool {
		if seed < 0 {
			seed = -seed
		}
		g := graph.GenerateGeo(seed%17+1, 15)
		goal := graph.MustParsePathQuery("road.road*")
		pairs := g.Eval(goal)
		if len(pairs) == 0 {
			return true
		}
		seedPair := pairs[int(seed)%len(pairs)]
		w := g.ShortestWord(seedPair.Src, seedPair.Dst)
		for _, l := range w {
			if l != "road" {
				return true // goal outside candidate space; skip
			}
		}
		pool := DefaultPool(g, 3, 200)
		stats, err := Run(g, seedPair, pool, GoalOracle{G: g, Goal: goal}, SplitStrategy{})
		if err != nil {
			return true // candidate-space misses are acceptable here
		}
		return stats.Questions <= len(pool)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
