package graphlearn

import (
	"fmt"
	"math/rand"
	"testing"

	"querylearn/internal/graph"
)

// denseMembership is the all-pairs differential oracle for the sparse
// engine: candidate membership computed by the full Eval and projected onto
// the interned universe. Sessions built with it and with the production
// sparseMembership must be indistinguishable.
func denseMembership(g *graph.Graph, q graph.PathQuery, pairs []graph.Pair) []bool {
	sel := map[graph.Pair]bool{}
	for _, p := range g.Eval(q) {
		sel[p] = true
	}
	out := make([]bool, len(pairs))
	for i, p := range pairs {
		out[i] = sel[p]
	}
	return out
}

// driveTranscript runs a session to convergence with a deterministic
// strategy, returning the asked pairs, the final survivors, and the result.
func driveTranscript(t *testing.T, s *Session, oracle Oracle, strat Strategy) (asked []graph.Pair, survivors []string, result string) {
	t.Helper()
	for steps := 0; ; steps++ {
		if steps > 5000 {
			t.Fatal("session did not converge in 5000 questions")
		}
		inf := s.InformativePairs()
		if len(inf) == 0 {
			break
		}
		p := inf[strat.Pick(s, inf)]
		asked = append(asked, p)
		if err := s.Record(p, oracle.LabelPair(p.Src, p.Dst)); err != nil {
			t.Fatalf("Record(%v): %v", p, err)
		}
	}
	for _, q := range s.Candidates {
		survivors = append(survivors, q.String())
	}
	return asked, survivors, s.Result().String()
}

// TestDifferentialSparseVsDenseSession pins the tentpole's equivalence: on
// graphs small enough for the dense all-pairs oracle, the sparse
// pool-projected session must ask the same questions, keep the same
// survivors, and learn the same result.
func TestDifferentialSparseVsDenseSession(t *testing.T) {
	goals := []graph.PathQuery{
		graph.MustParsePathQuery("highway.highway*"),
		graph.MustParsePathQuery("road.road*"),
		graph.MustParsePathQuery("highway.road*"),
	}
	checked := 0
	for seed := int64(1); seed < 25; seed++ {
		g := graph.GenerateGeo(seed, 20+int(seed)%17)
		pool := DefaultPool(g, 4, 300)
		for _, goal := range goals {
			var seedPair graph.Pair
			found := false
			for _, p := range g.Eval(goal) {
				if p.Src != p.Dst && len(g.ShortestWord(p.Src, p.Dst)) >= 2 {
					seedPair, found = p, true
					break
				}
			}
			if !found {
				continue
			}
			sparse, err := newSession(g, seedPair, pool, nil, nil, sparseMembership)
			if err != nil {
				continue // seed's word may put the goal outside the class
			}
			dense, err := newSession(g, seedPair, pool, nil, nil, denseMembership)
			if err != nil {
				t.Fatalf("dense session errored where sparse did not: %v", err)
			}
			oracle := GoalOracle{G: g, Goal: goal}
			sa, ss, sr := driveTranscript(t, sparse, oracle, SplitStrategy{})
			da, ds, dr := driveTranscript(t, dense, oracle, SplitStrategy{})
			if fmt.Sprint(sa) != fmt.Sprint(da) {
				t.Fatalf("seed %d goal %s: question sequences differ\nsparse %v\ndense  %v", seed, goal, sa, da)
			}
			if fmt.Sprint(ss) != fmt.Sprint(ds) {
				t.Fatalf("seed %d goal %s: survivors differ: %v vs %v", seed, goal, ss, ds)
			}
			if sr != dr {
				t.Fatalf("seed %d goal %s: results differ: %s vs %s", seed, goal, sr, dr)
			}
			checked++
		}
	}
	if checked < 5 {
		t.Fatalf("only %d seed/goal combinations were checkable; the differential needs more coverage", checked)
	}
}

// Out-of-pool answers grow the interned universe; sparse and dense sessions
// must stay equivalent through that growth path too.
func TestSparseSessionUniverseGrowth(t *testing.T) {
	g := graph.GenerateGeo(7, 40)
	goal := graph.MustParsePathQuery("highway.highway*")
	var seedPair graph.Pair
	found := false
	for _, p := range g.Eval(goal) {
		if p.Src != p.Dst && len(g.ShortestWord(p.Src, p.Dst)) >= 2 {
			seedPair, found = p, true
			break
		}
	}
	if !found {
		t.Skip("no usable seed for this generator seed")
	}
	// A deliberately tiny pool so most of the graph is outside the universe.
	pool := DefaultPool(g, 2, 10)
	sparse, err := newSession(g, seedPair, pool, nil, nil, sparseMembership)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := newSession(g, seedPair, pool, nil, nil, denseMembership)
	if err != nil {
		t.Fatal(err)
	}
	oracle := GoalOracle{G: g, Goal: goal}
	n := g.NumNodes()
	recorded := 0
	for src := 0; src < n && recorded < 8; src++ {
		for dst := 0; dst < n && recorded < 8; dst++ {
			p := graph.Pair{Src: src, Dst: dst}
			if _, inPool := sparse.slots[p]; inPool || !sparse.Informative(p) {
				continue
			}
			if sparse.Informative(p) != dense.Informative(p) {
				t.Fatalf("Informative(%v) disagrees before recording", p)
			}
			ans := oracle.LabelPair(p.Src, p.Dst)
			if err := sparse.Record(p, ans); err != nil {
				t.Fatalf("sparse Record(%v): %v", p, err)
			}
			if err := dense.Record(p, ans); err != nil {
				t.Fatalf("dense Record(%v): %v", p, err)
			}
			recorded++
		}
	}
	if recorded == 0 {
		t.Skip("no informative out-of-pool pair for this seed")
	}
	_, ss, sr := driveTranscript(t, sparse, oracle, SplitStrategy{})
	_, ds, dr := driveTranscript(t, dense, oracle, SplitStrategy{})
	if fmt.Sprint(ss) != fmt.Sprint(ds) || sr != dr {
		t.Fatalf("after universe growth: survivors %v vs %v, result %s vs %s", ss, ds, sr, dr)
	}
}

// A rejected (inconsistent) answer must not mark the pair labeled or mutate
// the version space — the regression behind Session.Record's old
// mark-before-apply ordering.
func TestRecordRejectedAnswerDoesNotPoison(t *testing.T) {
	g := graph.New()
	g.AddEdge("a", "r", "b")
	g.AddEdge("b", "s", "c")
	sess, err := NewSession(g, graph.Pair{Src: 0, Dst: 1}, DefaultPool(g, 5, 0))
	if err != nil {
		t.Fatal(err)
	}
	// Every candidate generalizes the witness word "r", so none selects
	// (a, c) (its word is r.s): all candidates agree the pair is negative.
	bad := graph.Pair{Src: 0, Dst: 2}
	before := len(sess.Candidates)
	if err := sess.Record(bad, true); err == nil {
		t.Fatal("recording a positive no candidate satisfies must error")
	}
	if len(sess.Candidates) != before {
		t.Fatalf("rejected answer shrank the version space: %d -> %d", before, len(sess.Candidates))
	}
	id, ok := sess.slots[bad]
	if !ok {
		t.Fatal("pair should have been interned by the attempted record")
	}
	if sess.labeled.Has(id) {
		t.Fatal("rejected answer marked the pair labeled (the poison bug)")
	}
	// The consistent answer for the same pair must still apply cleanly.
	if err := sess.Record(bad, false); err != nil {
		t.Fatalf("consistent retry after rejection failed: %v", err)
	}
	if !sess.labeled.Has(id) {
		t.Fatal("accepted answer did not mark the pair labeled")
	}
}

// DefaultPool must interleave sources when the limit truncates, instead of
// exhausting the lowest-index sources first.
func TestDefaultPoolInterleavesSources(t *testing.T) {
	g := graph.New()
	// 100 sources, each with 5 private targets: the old implementation
	// filled a 100-pair budget from the first 20 sources only.
	for s := 0; s < 100; s++ {
		for e := 0; e < 5; e++ {
			g.AddEdge(fmt.Sprintf("s%d", s), "r", fmt.Sprintf("t%d_%d", s, e))
		}
	}
	pool := DefaultPool(g, 1, 100)
	if len(pool) != 100 {
		t.Fatalf("pool size = %d, want 100", len(pool))
	}
	sources := map[int]bool{}
	for _, p := range pool {
		sources[p.Src] = true
	}
	if len(sources) != 100 {
		t.Fatalf("truncated pool covers %d distinct sources, want 100 (round-robin)", len(sources))
	}
	// Determinism: identical on every call.
	again := DefaultPool(g, 1, 100)
	if fmt.Sprint(pool) != fmt.Sprint(again) {
		t.Fatal("DefaultPool is not deterministic")
	}
}

// Without a limit, the round-robin pool must contain exactly the pairs of
// the specification: every connected (src, dst≠src) within maxLen hops.
func TestDefaultPoolUncappedSetUnchanged(t *testing.T) {
	g := graph.GenerateGeo(3, 40)
	maxLen := 3
	pool := DefaultPool(g, maxLen, 0)
	got := map[graph.Pair]bool{}
	for _, p := range pool {
		if got[p] {
			t.Fatalf("duplicate pair %v in pool", p)
		}
		got[p] = true
	}
	want := map[graph.Pair]bool{}
	for s := 0; s < g.NumNodes(); s++ {
		for d := 0; d < g.NumNodes(); d++ {
			if s == d {
				continue
			}
			if w := g.ShortestWord(s, d); w != nil && len(w) <= maxLen {
				want[graph.Pair{Src: s, Dst: d}] = true
			}
		}
	}
	if len(got) != len(want) {
		t.Fatalf("pool has %d pairs, want %d", len(got), len(want))
	}
	for p := range want {
		if !got[p] {
			t.Fatalf("pool misses pair %v", p)
		}
	}
}

// The PriorStrategy's pool-projected workload cache must rebuild per session
// and produce stable picks.
func TestPriorStrategyCachePerSession(t *testing.T) {
	g := graph.GenerateGeo(11, 30)
	goal := graph.MustParsePathQuery("highway.highway*")
	var seedPair graph.Pair
	found := false
	for _, p := range g.Eval(goal) {
		w := g.ShortestWord(p.Src, p.Dst)
		if len(w) >= 2 {
			pure := true
			for _, l := range w {
				if l != "highway" {
					pure = false
				}
			}
			if pure {
				seedPair, found = p, true
				break
			}
		}
	}
	if !found {
		t.Skip("no suitable seed")
	}
	prior := &PriorStrategy{G: g, Workload: []graph.PathQuery{goal}, Fallback: SplitStrategy{}}
	oracle := GoalOracle{G: g, Goal: goal}
	// Two back-to-back runs share the strategy value; the cache must key on
	// the session, not survive across sessions with stale universes.
	first, err := Run(g, seedPair, DefaultPool(g, 4, 500), oracle, prior)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(g, seedPair, DefaultPool(g, 3, 50), oracle, prior)
	if err != nil {
		t.Fatal(err)
	}
	if first.Questions == 0 && second.Questions == 0 {
		t.Skip("degenerate dialogues")
	}
	for _, p := range DefaultPool(g, 3, 50) {
		if g.Selects(second.Learned, p.Src, p.Dst) != g.Selects(goal, p.Src, p.Dst) {
			t.Fatalf("second session's result disagrees with goal on its pool pair %v", p)
		}
	}
}

// Random-strategy runs over the sparse engine must stay inside the pool
// budget (ported sanity check at a larger scale than the quick test).
func TestSparseSessionRandomRuns(t *testing.T) {
	g := graph.GenerateGeo(21, 60)
	goal := graph.MustParsePathQuery("road.road*")
	var seedPair graph.Pair
	found := false
	for _, p := range g.Eval(goal) {
		w := g.ShortestWord(p.Src, p.Dst)
		if p.Src == p.Dst || len(w) < 2 {
			continue
		}
		pure := true
		for _, l := range w {
			if l != "road" {
				pure = false
			}
		}
		if pure {
			seedPair, found = p, true
			break
		}
	}
	if !found {
		t.Skip("no pure-road seed")
	}
	pool := DefaultPool(g, 4, 400)
	stats, err := Run(g, seedPair, pool, GoalOracle{G: g, Goal: goal}, RandomStrategy{Rng: rand.New(rand.NewSource(8))})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Questions > len(pool) {
		t.Fatalf("asked %d questions over a %d-pair pool", stats.Questions, len(pool))
	}
}
