package graphlearn

import (
	"testing"

	"querylearn/internal/graph"
	"querylearn/internal/plan"
)

// sessionState flattens the observable session state for comparison.
func sessionState(s *Session) (cands []string, informative []graph.Pair, result string) {
	for _, q := range s.Candidates {
		cands = append(cands, q.String())
	}
	return cands, s.InformativePairs(), s.Result().String()
}

// The fused constructor must be state-identical to NewSessionProbes followed
// by Record of each example, across goal-labeled example sets that do and do
// not eliminate candidates, with planning on and off.
func TestNewSessionExamplesEquivalentToReplay(t *testing.T) {
	for seed := int64(1); seed < 15; seed++ {
		g := graph.GenerateGeo(seed, 25+int(seed)%11)
		pool := DefaultPool(g, 4, 200)
		goal := graph.MustParsePathQuery("highway.highway*")
		var seedPair graph.Pair
		found := false
		for _, p := range g.Eval(goal) {
			if p.Src != p.Dst && len(g.ShortestWord(p.Src, p.Dst)) >= 2 {
				seedPair, found = p, true
				break
			}
		}
		if !found {
			continue
		}
		// Label a slice of the pool by the goal: a mix of positives and
		// negatives, which is what eliminates candidates pre-pool.
		var examples []LabeledPair
		probes := make([]graph.Pair, 0, 6)
		for i := 0; i < len(pool) && len(examples) < 6; i += 7 {
			examples = append(examples, LabeledPair{Pair: pool[i], Positive: g.Selects(goal, pool[i].Src, pool[i].Dst)})
			probes = append(probes, pool[i])
		}

		replay := func() (*Session, error) {
			s, err := NewSessionProbes(g, seedPair, pool, probes)
			if err != nil {
				return nil, err
			}
			for _, e := range examples {
				if err := s.Record(e.Pair, e.Positive); err != nil {
					return nil, err
				}
			}
			return s, nil
		}
		for _, disabled := range []bool{false, true} {
			prev := plan.SetDisabled(disabled)
			fused, ferr := NewSessionExamples(g, seedPair, pool, examples)
			plan.SetDisabled(prev)
			replayed, rerr := replay()
			if (ferr == nil) != (rerr == nil) {
				t.Fatalf("seed %d disabled=%v: fused err %v, replay err %v", seed, disabled, ferr, rerr)
			}
			if ferr != nil {
				continue
			}
			fc, fi, fr := sessionState(fused)
			rc, ri, rr := sessionState(replayed)
			if len(fc) != len(rc) || fr != rr {
				t.Fatalf("seed %d disabled=%v: survivors/result differ: fused (%d, %q) vs replay (%d, %q)",
					seed, disabled, len(fc), fr, len(rc), rr)
			}
			for i := range fc {
				if fc[i] != rc[i] {
					t.Fatalf("seed %d disabled=%v: survivor %d: %q vs %q", seed, disabled, i, fc[i], rc[i])
				}
			}
			if len(fi) != len(ri) {
				t.Fatalf("seed %d disabled=%v: informative counts differ: %d vs %d", seed, disabled, len(fi), len(ri))
			}
			for i := range fi {
				if fi[i] != ri[i] {
					t.Fatalf("seed %d disabled=%v: informative %d: %v vs %v", seed, disabled, i, fi[i], ri[i])
				}
			}
		}
	}
}

// InformativeScan must return a strict prefix of InformativePairs with the
// full count, and exit early on a collapsed version space.
func TestInformativeScanPrefixAndCollapse(t *testing.T) {
	g := graph.GenerateGeo(3, 30)
	pool := DefaultPool(g, 4, 200)
	goal := graph.MustParsePathQuery("highway.highway*")
	var seedPair graph.Pair
	for _, p := range g.Eval(goal) {
		if p.Src != p.Dst && len(g.ShortestWord(p.Src, p.Dst)) >= 2 {
			seedPair = p
			break
		}
	}
	s, err := NewSession(g, seedPair, pool)
	if err != nil {
		t.Fatal(err)
	}
	all := s.InformativePairs()
	for _, lim := range []int{1, 2, len(all), len(all) + 5} {
		got, total := s.InformativeScan(lim)
		if total != len(all) {
			t.Fatalf("limit %d: total %d, want %d", lim, total, len(all))
		}
		wantLen := lim
		if wantLen > len(all) {
			wantLen = len(all)
		}
		if len(got) != wantLen {
			t.Fatalf("limit %d: materialized %d, want %d", lim, len(got), wantLen)
		}
		for i := range got {
			if got[i] != all[i] {
				t.Fatalf("limit %d: pair %d is %v, want %v", lim, i, got[i], all[i])
			}
		}
	}
	// Collapse the version space to one candidate; the scan must return
	// nothing without touching the pool.
	oracle := GoalOracle{G: g, Goal: goal}
	for steps := 0; len(s.Candidates) > 1 && steps < 5000; steps++ {
		inf := s.InformativePairs()
		if len(inf) == 0 {
			break
		}
		if err := s.Record(inf[0], oracle.LabelPair(inf[0].Src, inf[0].Dst)); err != nil {
			t.Fatal(err)
		}
	}
	if len(s.Candidates) < 2 {
		if got, total := s.InformativeScan(0); got != nil || total != 0 {
			t.Fatalf("collapsed scan returned (%v, %d), want (nil, 0)", got, total)
		}
	}
}
