package graphlearn

import (
	"fmt"
	"math/rand"

	"querylearn/internal/bitset"
	"querylearn/internal/graph"
)

// Interactive path-query learning. The session starts from one positive
// seed pair (the user's two chosen cities), builds the finite candidate
// space of generalizations of the seed's witness word, and asks the user to
// label node pairs the surviving candidates disagree on. Pairs on which all
// candidates agree are uninformative and never asked — the pruning that
// minimizes interactions.

// Oracle answers pair-membership questions.
type Oracle interface {
	LabelPair(src, dst int) bool
}

// GoalOracle simulates the user with a hidden goal query.
type GoalOracle struct {
	G    *graph.Graph
	Goal graph.PathQuery
}

// LabelPair implements Oracle.
func (o GoalOracle) LabelPair(src, dst int) bool { return o.G.Selects(o.Goal, src, dst) }

// Session is the state of one interactive run. Candidate selection sets
// are dense bitsets over interned pair ids (src*N + dst), so the
// disagreement tests behind Informative and SplitStrategy are bit probes
// rather than hash lookups.
type Session struct {
	G          *graph.Graph
	Candidates []graph.PathQuery
	// selects[i] caches candidate i's full selection set, by pair id.
	selects []*bitset.Set
	// selCount[i] caches selects[i].Count() for Result's tie-breaking.
	selCount []int
	labeled  *bitset.Set
	Pool     []graph.Pair
	// Stats
	Questions int
}

// pairID interns a node pair as src*NumNodes + dst.
func (s *Session) pairID(p graph.Pair) int { return p.Src*s.G.NumNodes() + p.Dst }

// NewSession builds a session from a positive seed pair and a candidate
// pool of pairs the user may be asked about. The seed itself is treated as
// answered positively.
func NewSession(g *graph.Graph, seed graph.Pair, pool []graph.Pair) (*Session, error) {
	word := g.ShortestWord(seed.Src, seed.Dst)
	if word == nil {
		return nil, fmt.Errorf("graphlearn: seed pair (%s,%s) is not connected",
			g.Node(seed.Src), g.Node(seed.Dst))
	}
	cands := CandidatesFromWord(word)
	n := g.NumNodes()
	s := &Session{G: g, Pool: pool, labeled: bitset.New(n * n)}
	for _, q := range cands {
		sel := bitset.New(n * n)
		for _, p := range g.Eval(q) {
			sel.Add(s.pairID(p))
		}
		// Every candidate accepts the seed word, hence selects seed.
		s.Candidates = append(s.Candidates, q)
		s.selects = append(s.selects, sel)
		s.selCount = append(s.selCount, sel.Count())
	}
	s.labeled.Add(s.pairID(seed))
	if err := s.record(seed, true); err != nil {
		return nil, err
	}
	return s, nil
}

// Informative reports whether surviving candidates disagree on the pair.
func (s *Session) Informative(p graph.Pair) bool {
	id := s.pairID(p)
	if s.labeled.Has(id) {
		return false
	}
	first, rest := false, false
	for i := range s.Candidates {
		v := s.selects[i].Has(id)
		if i == 0 {
			first = v
			continue
		}
		if v != first {
			rest = true
			break
		}
	}
	return rest
}

// InformativePairs lists the informative pool pairs.
func (s *Session) InformativePairs() []graph.Pair {
	var out []graph.Pair
	for _, p := range s.Pool {
		if s.Informative(p) {
			out = append(out, p)
		}
	}
	return out
}

// Record applies a user answer, filtering the version space.
func (s *Session) Record(p graph.Pair, positive bool) error {
	s.labeled.Add(s.pairID(p))
	return s.record(p, positive)
}

func (s *Session) record(p graph.Pair, positive bool) error {
	id := s.pairID(p)
	var cands []graph.PathQuery
	var sels []*bitset.Set
	var counts []int
	for i, q := range s.Candidates {
		if s.selects[i].Has(id) == positive {
			cands = append(cands, q)
			sels = append(sels, s.selects[i])
			counts = append(counts, s.selCount[i])
		}
	}
	if len(cands) == 0 {
		return fmt.Errorf("graphlearn: answers eliminated every candidate (goal outside the class)")
	}
	s.Candidates, s.selects, s.selCount = cands, sels, counts
	return nil
}

// Result returns the most specific surviving candidate: the one selecting
// the fewest pairs (ties broken by query string).
func (s *Session) Result() graph.PathQuery {
	best := 0
	for i := range s.Candidates {
		ci, cb := s.selCount[i], s.selCount[best]
		if ci < cb || (ci == cb && s.Candidates[i].String() < s.Candidates[best].String()) {
			best = i
		}
	}
	return s.Candidates[best]
}

// Strategy orders the questions.
type Strategy interface {
	Pick(s *Session, informative []graph.Pair) int
	Name() string
}

// RunStats summarizes an interactive run.
type RunStats struct {
	Strategy  string
	Questions int
	PoolSize  int
	Pruned    int
	Survivors int
	Learned   graph.PathQuery
}

// Run drives the loop until no informative pair remains.
func Run(g *graph.Graph, seed graph.Pair, pool []graph.Pair, oracle Oracle, strat Strategy) (RunStats, error) {
	s, err := NewSession(g, seed, pool)
	if err != nil {
		return RunStats{}, err
	}
	for {
		inf := s.InformativePairs()
		if len(inf) == 0 {
			break
		}
		pick := strat.Pick(s, inf)
		if pick < 0 || pick >= len(inf) {
			return RunStats{}, fmt.Errorf("graphlearn: strategy %s picked out of range", strat.Name())
		}
		p := inf[pick]
		ans := oracle.LabelPair(p.Src, p.Dst)
		s.Questions++
		if err := s.Record(p, ans); err != nil {
			return RunStats{}, err
		}
	}
	return RunStats{
		Strategy:  strat.Name(),
		Questions: s.Questions,
		PoolSize:  len(pool),
		Pruned:    len(pool) - s.Questions,
		Survivors: len(s.Candidates),
		Learned:   s.Result(),
	}, nil
}

// DefaultPool returns the candidate pairs a user could reasonably be shown:
// every connected pair with a shortest path of at most maxLen edges, capped
// at limit pairs (0 = no cap), in deterministic order.
func DefaultPool(g *graph.Graph, maxLen, limit int) []graph.Pair {
	var out []graph.Pair
	seen := bitset.New(g.NumNodes())
	for s := 0; s < g.NumNodes(); s++ {
		// BFS with depth bound.
		type item struct{ node, depth int }
		seen.Clear()
		seen.Add(s)
		queue := []item{{s, 0}}
		for len(queue) > 0 {
			it := queue[0]
			queue = queue[1:]
			if it.node != s {
				out = append(out, graph.Pair{Src: s, Dst: it.node})
				if limit > 0 && len(out) >= limit {
					return out
				}
			}
			if it.depth == maxLen {
				continue
			}
			g.Out(it.node, func(_ string, to int) {
				if !seen.Has(to) {
					seen.Add(to)
					queue = append(queue, item{to, it.depth + 1})
				}
			})
		}
	}
	return out
}

// RandomStrategy asks a uniformly random informative pair.
type RandomStrategy struct{ Rng *rand.Rand }

// Pick implements Strategy.
func (r RandomStrategy) Pick(_ *Session, inf []graph.Pair) int { return r.Rng.Intn(len(inf)) }

// Name implements Strategy.
func (RandomStrategy) Name() string { return "random" }

// SplitStrategy asks the pair that splits the version space most evenly —
// the information-greedy choice.
type SplitStrategy struct{}

// Pick implements Strategy.
func (SplitStrategy) Pick(s *Session, inf []graph.Pair) int {
	best, bestDist := 0, 1<<30
	for i, p := range inf {
		id := s.pairID(p)
		yes := 0
		for c := range s.Candidates {
			if s.selects[c].Has(id) {
				yes++
			}
		}
		d := 2*yes - len(s.Candidates)
		if d < 0 {
			d = -d
		}
		if d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// Name implements Strategy.
func (SplitStrategy) Name() string { return "split" }

// PriorStrategy prefers informative pairs selected by previously learned
// workload queries — the paper's "ask with priority the next user to label
// a path having the same property" heuristic — falling back to an inner
// strategy among equally prior-favoured pairs.
type PriorStrategy struct {
	G        *graph.Graph
	Workload []graph.PathQuery
	Fallback Strategy
	cache    []*bitset.Set
}

// Pick implements Strategy.
func (ps *PriorStrategy) Pick(s *Session, inf []graph.Pair) int {
	if ps.cache == nil {
		n := ps.G.NumNodes()
		for _, w := range ps.Workload {
			sel := bitset.New(n * n)
			for _, p := range ps.G.Eval(w) {
				sel.Add(p.Src*n + p.Dst)
			}
			ps.cache = append(ps.cache, sel)
		}
	}
	bestScore := -1
	var bestIdx []int
	for i, p := range inf {
		id := s.pairID(p)
		score := 0
		for _, sel := range ps.cache {
			if sel.Has(id) {
				score++
			}
		}
		if score > bestScore {
			bestScore = score
			bestIdx = []int{i}
		} else if score == bestScore {
			bestIdx = append(bestIdx, i)
		}
	}
	if len(bestIdx) == 1 || ps.Fallback == nil {
		return bestIdx[0]
	}
	sub := make([]graph.Pair, len(bestIdx))
	for k, i := range bestIdx {
		sub[k] = inf[i]
	}
	return bestIdx[ps.Fallback.Pick(s, sub)]
}

// Name implements Strategy.
func (ps *PriorStrategy) Name() string { return "prior" }
