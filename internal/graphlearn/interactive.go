package graphlearn

import (
	"fmt"
	"math/rand"

	"querylearn/internal/bitset"
	"querylearn/internal/graph"
	"querylearn/internal/plan"
)

// layerSession names this layer in querylearn_plan_* metric labels.
const layerSession = "graphlearn.session"

// Interactive path-query learning. The session starts from one positive
// seed pair (the user's two chosen cities), builds the finite candidate
// space of generalizations of the seed's witness word, and asks the user to
// label node pairs the surviving candidates disagree on. Pairs on which all
// candidates agree are uninformative and never asked — the pruning that
// minimizes interactions.

// Oracle answers pair-membership questions.
type Oracle interface {
	LabelPair(src, dst int) bool
}

// GoalOracle simulates the user with a hidden goal query.
type GoalOracle struct {
	G    *graph.Graph
	Goal graph.PathQuery
}

// LabelPair implements Oracle.
func (o GoalOracle) LabelPair(src, dst int) bool { return o.G.Selects(o.Goal, src, dst) }

// Session is the state of one interactive run. The version space is
// pool-projected and sparse: only the pairs that can ever be probed — the
// candidate pool, the seed, and any pair an answer later names — are
// interned into a compact pair-index universe, and each candidate's
// membership is a |universe|-bit set filled by the source-restricted
// graph.EvalPairs. Session memory is therefore O(candidates · |pool|) bits
// and creation runs one product BFS per distinct pool source, independent of
// the n² pair space that capped earlier versions at a few thousand nodes.
type Session struct {
	G          *graph.Graph
	Candidates []graph.PathQuery
	// universe is the interned probe-able pair space; slots maps a pair to
	// its index. Answers about pairs outside the initial universe grow it.
	universe []graph.Pair
	slots    map[graph.Pair]int
	// selects[i] is candidate i's membership over the universe.
	selects []*bitset.Set
	// selCount[i] caches selects[i].Count() for Result's tie-breaking.
	selCount []int
	labeled  *bitset.Set
	Pool     []graph.Pair
	// rec accumulates the session's planning work — evaluation-order
	// decisions, candidates eliminated before the pool-wide pass, plan time —
	// for the serving layer to drain into the request trace.
	rec *plan.Recorder
	// Stats
	Questions int
}

// PlanRecorder exposes the session's planner recorder so the serving layer
// can drain per-request planning time and decisions into its trace.
func (s *Session) PlanRecorder() *plan.Recorder { return s.rec }

// membershipFunc computes, for one candidate, which of the pairs it selects.
// The production implementation is the pool-restricted graph.EvalPairs; the
// differential tests substitute a dense all-pairs oracle.
type membershipFunc func(g *graph.Graph, q graph.PathQuery, pairs []graph.Pair) []bool

func sparseMembership(g *graph.Graph, q graph.PathQuery, pairs []graph.Pair) []bool {
	return g.EvalPairs(q, pairs)
}

// NewSession builds a session from a positive seed pair and a candidate
// pool of pairs the user may be asked about. The seed itself is treated as
// answered positively.
func NewSession(g *graph.Graph, seed graph.Pair, pool []graph.Pair) (*Session, error) {
	return newSession(g, seed, pool, nil, nil, nil)
}

// NewSessionProbes is NewSession with further known probe-able pairs — a
// task's replayed examples — interned into the universe up front, so their
// candidate membership rides the same batched pool-restricted evaluation
// instead of the per-pair fallback of a post-construction Record.
func NewSessionProbes(g *graph.Graph, seed graph.Pair, pool, probes []graph.Pair) (*Session, error) {
	return newSession(g, seed, pool, probes, nil, nil)
}

// LabeledPair is a probe-able pair together with its known label — a task
// example replayed into a new session.
type LabeledPair struct {
	Pair     graph.Pair
	Positive bool
}

// NewSessionExamples is NewSessionProbes fused with the example replay: the
// example labels are applied to the candidate space before the pool-wide
// membership evaluation, so a candidate a replayed answer eliminates never
// pays a pool-sized BFS — the collapsed version space stops evaluation
// mid-flight. The final session state is identical to NewSessionProbes
// followed by Record of each example (per-pair verdicts are independent of
// the batch they are computed in); QUERYLEARN_NOPLAN literally takes that
// path.
func NewSessionExamples(g *graph.Graph, seed graph.Pair, pool []graph.Pair, examples []LabeledPair) (*Session, error) {
	return newSession(g, seed, pool, nil, examples, nil)
}

func newSession(g *graph.Graph, seed graph.Pair, pool, probes []graph.Pair, examples []LabeledPair, membership membershipFunc) (*Session, error) {
	word := g.ShortestWord(seed.Src, seed.Dst)
	if word == nil {
		return nil, fmt.Errorf("graphlearn: seed pair (%s,%s) is not connected",
			g.Node(seed.Src), g.Node(seed.Dst))
	}
	cands := CandidatesFromWord(word)
	s := &Session{G: g, Pool: pool, slots: make(map[graph.Pair]int, len(pool)+1), rec: new(plan.Recorder)}
	if membership == nil {
		// Default sparse membership, with the session's recorder threaded
		// into the graph planner for request-trace attribution.
		membership = func(g *graph.Graph, q graph.PathQuery, pairs []graph.Pair) []bool {
			out := make([]bool, len(pairs))
			g.EvalPairsStream(q, pairs, s.rec, func(v graph.PairVerdict) bool {
				out[v.Index] = v.Selected
				return true
			})
			return out
		}
	}
	intern := func(p graph.Pair) {
		if _, ok := s.slots[p]; !ok {
			s.slots[p] = len(s.universe)
			s.universe = append(s.universe, p)
		}
	}
	for _, p := range pool {
		intern(p)
	}
	for _, p := range probes {
		intern(p)
	}
	for _, e := range examples {
		intern(e.Pair)
	}
	intern(seed)
	s.labeled = bitset.New(len(s.universe))

	// Planned pre-pass: judge every candidate on the labeled pairs alone —
	// the seed plus the replayed examples — and drop inconsistent ones
	// before any of them pays the pool-wide evaluation. The surviving set is
	// exactly what the record() replays below would keep, so the pre-pass
	// changes evaluation cost, never state.
	survivors := cands
	if len(examples) > 0 && !plan.Disabled() {
		done := s.rec.StartPlan(layerSession)
		labeledPairs := make([]graph.Pair, 0, len(examples)+1)
		for _, e := range examples {
			labeledPairs = append(labeledPairs, e.Pair)
		}
		labeledPairs = append(labeledPairs, seed)
		survivors = survivors[:0:0]
		for _, q := range cands {
			verdicts := membership(g, q, labeledPairs)
			ok := verdicts[len(examples)] // every candidate must select the seed
			for i := range examples {
				if !ok {
					break
				}
				if verdicts[i] != examples[i].Positive {
					ok = false
				}
			}
			if ok {
				survivors = append(survivors, q)
			}
		}
		done()
		s.rec.Decide(layerSession, "pruned-before-pool", len(cands)-len(survivors))
		if len(survivors) == 0 {
			return nil, fmt.Errorf("graphlearn: answers eliminated every candidate (goal outside the class)")
		}
	}
	for _, q := range survivors {
		sel := bitset.New(len(s.universe))
		count := 0
		for id, in := range membership(g, q, s.universe) {
			if in {
				sel.Add(id)
				count++
			}
		}
		// Every candidate accepts the seed word, hence selects seed.
		s.Candidates = append(s.Candidates, q)
		s.selects = append(s.selects, sel)
		s.selCount = append(s.selCount, count)
	}
	seedID := s.slots[seed]
	if err := s.record(seedID, true); err != nil {
		return nil, err
	}
	s.labeled.Add(seedID)
	for i, e := range examples {
		id := s.slots[e.Pair]
		if err := s.record(id, e.Positive); err != nil {
			return nil, fmt.Errorf("graphlearn: replaying example %d: %w", i, err)
		}
		s.labeled.Add(id)
	}
	return s, nil
}

// ensureSlot interns a pair into the universe, extending every surviving
// candidate's membership set by its verdict on the new pair. Pool and probe
// pairs are interned at construction; this grows the universe only when an
// answer names a pair outside it (an arbitrary wire answer). Membership is
// judged by SelectsMany — sparse per-source runs over one shared scratch
// allocation, not a dense whole-graph pass or a per-candidate array.
func (s *Session) ensureSlot(p graph.Pair) int {
	if id, ok := s.slots[p]; ok {
		return id
	}
	id := len(s.universe)
	s.universe = append(s.universe, p)
	s.slots[p] = id
	s.labeled.Grow(id + 1)
	for i, in := range s.G.SelectsMany(s.Candidates, p.Src, p.Dst) {
		s.selects[i].Grow(id + 1)
		if in {
			s.selects[i].Add(id)
			s.selCount[i]++
		}
	}
	return id
}

// Informative reports whether surviving candidates disagree on the pair.
func (s *Session) Informative(p graph.Pair) bool {
	if len(s.Candidates) < 2 {
		return false
	}
	id, ok := s.slots[p]
	if !ok {
		// A pair outside the interned universe: answer from the graph
		// directly without growing the universe (Informative is a read).
		// Disagree streams the per-candidate verdicts and stops at the
		// first disagreement instead of materializing them all.
		return s.G.Disagree(s.Candidates, p.Src, p.Dst)
	}
	if s.labeled.Has(id) {
		return false
	}
	first := s.selects[0].Has(id)
	for _, sel := range s.selects[1:] {
		if sel.Has(id) != first {
			return true
		}
	}
	return false
}

// InformativePairs lists the informative pool pairs.
func (s *Session) InformativePairs() []graph.Pair {
	out, _ := s.InformativeScan(0)
	return out
}

// InformativeScan is the streamed form of InformativePairs behind batched
// question proposal: the pool is still scanned in full (the total
// informative count is part of the wire contract), but at most limit pairs
// are materialized (limit <= 0 means all). A collapsed version space —
// fewer than two surviving candidates — exits before touching the pool:
// nothing can be informative once the survivors cannot disagree.
func (s *Session) InformativeScan(limit int) ([]graph.Pair, int) {
	if len(s.Candidates) < 2 {
		if len(s.Pool) > 0 {
			s.rec.EarlyStop(layerSession)
		}
		return nil, 0
	}
	var out []graph.Pair
	total := 0
	for _, p := range s.Pool {
		if s.Informative(p) {
			total++
			if limit <= 0 || len(out) < limit {
				out = append(out, p)
			}
		}
	}
	return out, total
}

// Record applies a user answer, filtering the version space. The pair is
// committed to the labeled set only after the answer applies cleanly, so a
// rejected (inconsistent) answer does not poison Informative for the pair.
func (s *Session) Record(p graph.Pair, positive bool) error {
	id := s.ensureSlot(p)
	if err := s.record(id, positive); err != nil {
		return err
	}
	s.labeled.Add(id)
	return nil
}

func (s *Session) record(id int, positive bool) error {
	var cands []graph.PathQuery
	var sels []*bitset.Set
	var counts []int
	for i, q := range s.Candidates {
		if s.selects[i].Has(id) == positive {
			cands = append(cands, q)
			sels = append(sels, s.selects[i])
			counts = append(counts, s.selCount[i])
		}
	}
	if len(cands) == 0 {
		return fmt.Errorf("graphlearn: answers eliminated every candidate (goal outside the class)")
	}
	s.Candidates, s.selects, s.selCount = cands, sels, counts
	return nil
}

// Result returns the most specific surviving candidate: the one selecting
// the fewest pairs of the interned universe (the pool plus every answered
// pair), ties broken by query string. Projecting specificity onto the
// universe instead of the full n² pair space keeps the measure computable on
// large graphs; at convergence all survivors agree on the whole pool, so the
// choice among them is indistinguishable by any probe-able pair.
func (s *Session) Result() graph.PathQuery {
	best := 0
	for i := range s.Candidates {
		ci, cb := s.selCount[i], s.selCount[best]
		if ci < cb || (ci == cb && s.Candidates[i].String() < s.Candidates[best].String()) {
			best = i
		}
	}
	return s.Candidates[best]
}

// Strategy orders the questions.
type Strategy interface {
	Pick(s *Session, informative []graph.Pair) int
	Name() string
}

// RunStats summarizes an interactive run.
type RunStats struct {
	Strategy  string
	Questions int
	PoolSize  int
	Pruned    int
	Survivors int
	Learned   graph.PathQuery
}

// Run drives the loop until no informative pair remains.
func Run(g *graph.Graph, seed graph.Pair, pool []graph.Pair, oracle Oracle, strat Strategy) (RunStats, error) {
	s, err := NewSession(g, seed, pool)
	if err != nil {
		return RunStats{}, err
	}
	for {
		inf := s.InformativePairs()
		if len(inf) == 0 {
			break
		}
		pick := strat.Pick(s, inf)
		if pick < 0 || pick >= len(inf) {
			return RunStats{}, fmt.Errorf("graphlearn: strategy %s picked out of range", strat.Name())
		}
		p := inf[pick]
		ans := oracle.LabelPair(p.Src, p.Dst)
		s.Questions++
		if err := s.Record(p, ans); err != nil {
			return RunStats{}, err
		}
	}
	return RunStats{
		Strategy:  strat.Name(),
		Questions: s.Questions,
		PoolSize:  len(pool),
		Pruned:    len(pool) - s.Questions,
		Survivors: len(s.Candidates),
		Learned:   s.Result(),
	}, nil
}

// DefaultPool returns the candidate pairs a user could reasonably be shown:
// every connected pair with a shortest path of at most maxLen edges, capped
// at limit pairs (0 = no cap). Sources are interleaved deterministically —
// round-robin, one pair per source per round, over lazily advanced
// per-source BFS frontiers — so a truncating limit samples pairs from across
// the whole graph instead of exhausting the lowest-index sources first (the
// bias that skewed big-graph sessions).
func DefaultPool(g *graph.Graph, maxLen, limit int) []graph.Pair {
	n := g.NumNodes()
	var out []graph.Pair
	// active holds the sources whose BFS still has pairs to yield, in node
	// order; iterators are created lazily so a small limit over a huge graph
	// never materializes per-source state it will not use.
	var active []*poolIter
	for src := 0; src < n; src++ {
		it := newPoolIter(g, src, maxLen)
		p, ok := it.next()
		if !ok {
			continue
		}
		out = append(out, p)
		if limit > 0 && len(out) >= limit {
			return out
		}
		active = append(active, it)
	}
	for len(active) > 0 {
		live := active[:0]
		for _, it := range active {
			p, ok := it.next()
			if !ok {
				continue
			}
			out = append(out, p)
			if limit > 0 && len(out) >= limit {
				return out
			}
			live = append(live, it)
		}
		active = live
	}
	return out
}

// poolIter is one source's depth-bounded BFS, advanced one discovered pair
// at a time. Visited-set state is a map so a thousand live iterators over a
// million-node graph stay proportional to what they actually visited.
type poolIter struct {
	g      *graph.Graph
	src    int
	maxLen int
	queue  []poolItem
	qi     int
	seen   map[int]struct{}
}

type poolItem struct{ node, depth int }

func newPoolIter(g *graph.Graph, src, maxLen int) *poolIter {
	it := &poolIter{g: g, src: src, maxLen: maxLen, seen: map[int]struct{}{src: {}}}
	it.queue = append(it.queue, poolItem{src, 0})
	return it
}

// next yields the source's next BFS-discovered pair, in the same per-source
// order the original single-pass implementation produced.
func (it *poolIter) next() (graph.Pair, bool) {
	for it.qi < len(it.queue) {
		cur := it.queue[it.qi]
		it.qi++
		if cur.depth < it.maxLen {
			it.g.Out(cur.node, func(_ string, to int) {
				if _, ok := it.seen[to]; !ok {
					it.seen[to] = struct{}{}
					it.queue = append(it.queue, poolItem{to, cur.depth + 1})
				}
			})
		}
		if cur.node != it.src {
			return graph.Pair{Src: it.src, Dst: cur.node}, true
		}
	}
	it.queue, it.seen = nil, nil
	return graph.Pair{}, false
}

// RandomStrategy asks a uniformly random informative pair.
type RandomStrategy struct{ Rng *rand.Rand }

// Pick implements Strategy.
func (r RandomStrategy) Pick(_ *Session, inf []graph.Pair) int { return r.Rng.Intn(len(inf)) }

// Name implements Strategy.
func (RandomStrategy) Name() string { return "random" }

// SplitStrategy asks the pair that splits the version space most evenly —
// the information-greedy choice.
type SplitStrategy struct{}

// Pick implements Strategy.
func (SplitStrategy) Pick(s *Session, inf []graph.Pair) int {
	best, bestDist := 0, 1<<30
	for i, p := range inf {
		id, ok := s.slots[p]
		if !ok {
			continue // informative pairs come from the interned pool
		}
		yes := 0
		for c := range s.Candidates {
			if s.selects[c].Has(id) {
				yes++
			}
		}
		d := 2*yes - len(s.Candidates)
		if d < 0 {
			d = -d
		}
		if d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// Name implements Strategy.
func (SplitStrategy) Name() string { return "split" }

// PriorStrategy prefers informative pairs selected by previously learned
// workload queries — the paper's "ask with priority the next user to label
// a path having the same property" heuristic — falling back to an inner
// strategy among equally prior-favoured pairs.
type PriorStrategy struct {
	G        *graph.Graph
	Workload []graph.PathQuery
	Fallback Strategy
	// cache holds each workload query's membership over cacheFor's interned
	// universe — pool-projected like the session itself, so the prior costs
	// one EvalPairs per workload query instead of an n²-bit all-pairs set.
	cacheFor *Session
	cache    []*bitset.Set
}

// Pick implements Strategy.
func (ps *PriorStrategy) Pick(s *Session, inf []graph.Pair) int {
	if ps.cacheFor != s {
		ps.cacheFor = s
		ps.cache = ps.cache[:0]
		universe := append([]graph.Pair(nil), s.universe...)
		for _, w := range ps.Workload {
			sel := bitset.New(len(universe))
			for id, in := range ps.G.EvalPairs(w, universe) {
				if in {
					sel.Add(id)
				}
			}
			ps.cache = append(ps.cache, sel)
		}
	}
	bestScore := -1
	var bestIdx []int
	for i, p := range inf {
		id, ok := s.slots[p]
		score := 0
		if ok {
			for _, sel := range ps.cache {
				// Slots interned after the cache was built score zero.
				if id < sel.Cap() && sel.Has(id) {
					score++
				}
			}
		}
		if score > bestScore {
			bestScore = score
			bestIdx = []int{i}
		} else if score == bestScore {
			bestIdx = append(bestIdx, i)
		}
	}
	if len(bestIdx) == 1 || ps.Fallback == nil {
		return bestIdx[0]
	}
	sub := make([]graph.Pair, len(bestIdx))
	for k, i := range bestIdx {
		sub[k] = inf[i]
	}
	return bestIdx[ps.Fallback.Pick(s, sub)]
}

// Name implements Strategy.
func (ps *PriorStrategy) Name() string { return "prior" }
