// Package crowd simulates crowdsourced query learning — §3's observation
// (after Marcus et al., "Human-powered sorts and joins") that when the
// labeler is a paid crowd, "minimizing the number of interactions with the
// user is equivalent to minimizing the financial cost of the process". Each
// question to the crowd is a Human Intelligence Task (HIT) with a dollar
// cost; workers err with some probability, and majority voting over
// several workers trades extra HITs for answer quality.
package crowd

import (
	"errors"
	"fmt"
	"math/rand"

	"querylearn/internal/interact"
	"querylearn/internal/rellearn"
)

// Config describes the crowdsourcing marketplace.
type Config struct {
	// CostPerHIT is the payment for one worker answering one question.
	CostPerHIT float64
	// WorkerErrorRate is the probability a single worker answers wrong.
	WorkerErrorRate float64
	// VotesPerQuestion is the number of workers asked per question
	// (majority decides). Values < 1 mean 1; an even value is rounded up
	// to the next odd one so a vote can never tie.
	VotesPerQuestion int
	// WorkerFailRate is the probability a worker call fails outright — the
	// HIT times out or is abandoned — instead of answering. A failed call
	// produces no label and is never charged, unlike WorkerErrorRate's
	// answered-but-wrong votes.
	WorkerFailRate float64
}

// Report summarizes a crowdsourced learning run.
type Report struct {
	Strategy  string
	Questions int     // logical questions the learner asked
	HITs      int     // paid worker tasks (Questions × votes)
	Cost      float64 // HITs × CostPerHIT
	Accuracy  float64 // fraction of instance pairs the result labels correctly
	Failed    bool    // the run aborted before learning a predicate
	// OracleFailed narrows Failed: the dialogue died because a worker call
	// failed (timeout, abandoned HIT), not because noisy answers became
	// inconsistent. The unanswered HIT is not in HITs or Cost.
	OracleFailed bool
}

// RunJoin learns a join predicate over the universe with crowd answers and
// accounts the cost. The goal predicate plays the ground truth; rng drives
// worker errors.
func RunJoin(u *rellearn.Universe, goal rellearn.PairSet, strat rellearn.Strategy, cfg Config, rng *rand.Rand) (Report, error) {
	if cfg.CostPerHIT < 0 {
		return Report{}, fmt.Errorf("crowd: negative HIT cost")
	}
	truth := rellearn.GoalOracle{U: u, Goal: goal}
	noisy := interact.NoisyOracle[[2]int]{
		Inner: interact.OracleFunc[[2]int](func(p [2]int) bool {
			return truth.LabelPair(p[0], p[1])
		}),
		ErrorRate: cfg.WorkerErrorRate,
		Rng:       rng,
	}
	var worker interact.Oracle[[2]int] = noisy
	if cfg.WorkerFailRate > 0 {
		worker = &interact.FlakyOracle[[2]int]{Inner: noisy, ErrorRate: cfg.WorkerFailRate, Rng: rng}
	}
	maj := &interact.MajorityOracle[[2]int]{Inner: worker, K: cfg.VotesPerQuestion}
	report := Report{Strategy: strat.Name()}
	stats, err := rellearn.Run(u, crowdOracle{maj}, strat)
	// The partial stats are meaningful even on failure: every question up to
	// the failure was asked and its answered HITs were paid, so the report
	// must account them either way. maj.Calls counts only answered votes —
	// an unanswered (failed) HIT is never charged.
	report.Questions = stats.Questions
	report.HITs = maj.Calls
	report.Cost = float64(maj.Calls) * cfg.CostPerHIT
	if err != nil {
		// The dialogue died — workers went dark, or noise produced
		// inconsistent answers; either way the money spent stays spent.
		report.Failed = true
		report.OracleFailed = errors.Is(err, interact.ErrOracle)
		return report, nil
	}
	learned, encErr := u.Encode(stats.Learned)
	if encErr != nil {
		return Report{}, encErr
	}
	report.Accuracy = accuracy(u, goal, learned)
	return report, nil
}

// crowdOracle adapts the generic majority oracle to the rellearn interface.
type crowdOracle struct {
	inner *interact.MajorityOracle[[2]int]
}

// LabelPair implements rellearn.Oracle.
func (c crowdOracle) LabelPair(li, ri int) bool { return c.inner.Label([2]int{li, ri}) }

// TryLabelPair implements rellearn.FallibleOracle, surfacing worker
// failures so rellearn.Run aborts the question instead of inventing an
// answer — and so the charge accounting above stays truthful.
func (c crowdOracle) TryLabelPair(li, ri int) (bool, error) {
	return c.inner.TryLabel([2]int{li, ri})
}

// accuracy measures agreement of two predicates over the whole instance.
func accuracy(u *rellearn.Universe, goal, learned rellearn.PairSet) float64 {
	total, agree := 0, 0
	for li := 0; li < u.Left.Len(); li++ {
		for ri := 0; ri < u.Right.Len(); ri++ {
			a := u.Agree(li, ri)
			total++
			if goal.SubsetOf(a) == learned.SubsetOf(a) {
				agree++
			}
		}
	}
	if total == 0 {
		return 1
	}
	return float64(agree) / float64(total)
}
