package crowd

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"querylearn/internal/interact"
	"querylearn/internal/relational"
	"querylearn/internal/rellearn"
)

func instance(t *testing.T, n int, seed int64) *rellearn.Universe {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	l := relational.MustNew("L", "a", "b")
	r := relational.MustNew("R", "x", "y")
	for i := 0; i < n; i++ {
		if err := l.Insert(fmt.Sprint(rng.Intn(3)), fmt.Sprint(rng.Intn(3))); err != nil {
			t.Fatal(err)
		}
		if err := r.Insert(fmt.Sprint(rng.Intn(3)), fmt.Sprint(rng.Intn(3))); err != nil {
			t.Fatal(err)
		}
	}
	return rellearn.NewUniverse(l, r)
}

func TestRunJoinPerfectWorkers(t *testing.T) {
	u := instance(t, 10, 1)
	goal, err := u.Encode([]relational.AttrPair{{Left: "a", Right: "x"}})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{CostPerHIT: 0.05, WorkerErrorRate: 0, VotesPerQuestion: 1}
	rep, err := RunJoin(u, goal, rellearn.MaxAgreeStrategy{}, cfg, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed {
		t.Fatal("perfect workers must not fail")
	}
	if rep.Accuracy != 1.0 {
		t.Errorf("accuracy = %.2f, want 1.0", rep.Accuracy)
	}
	if rep.HITs != rep.Questions {
		t.Errorf("1 vote per question: HITs %d != questions %d", rep.HITs, rep.Questions)
	}
	wantCost := float64(rep.HITs) * 0.05
	if rep.Cost != wantCost {
		t.Errorf("cost = %.2f, want %.2f", rep.Cost, wantCost)
	}
}

func TestRunJoinMajorityVotingCostsMore(t *testing.T) {
	u := instance(t, 10, 1)
	goal, _ := u.Encode([]relational.AttrPair{{Left: "a", Right: "x"}})
	single := Config{CostPerHIT: 0.05, WorkerErrorRate: 0, VotesPerQuestion: 1}
	voted := Config{CostPerHIT: 0.05, WorkerErrorRate: 0, VotesPerQuestion: 5}
	r1, err := RunJoin(u, goal, rellearn.MaxAgreeStrategy{}, single, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	r5, err := RunJoin(u, goal, rellearn.MaxAgreeStrategy{}, voted, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if r5.HITs != 5*r5.Questions {
		t.Errorf("votes not accounted: HITs %d, questions %d", r5.HITs, r5.Questions)
	}
	if r5.Cost <= r1.Cost {
		t.Errorf("majority voting should cost more: %.2f vs %.2f", r5.Cost, r1.Cost)
	}
}

func TestRunJoinNoisyWorkersMajorityHelps(t *testing.T) {
	// At moderate noise, majority voting should succeed more often than
	// single voting across seeds.
	u := instance(t, 8, 5)
	goal, _ := u.Encode([]relational.AttrPair{{Left: "a", Right: "x"}})
	succeed := func(votes int) int {
		ok := 0
		for seed := int64(0); seed < 20; seed++ {
			cfg := Config{CostPerHIT: 0.01, WorkerErrorRate: 0.15, VotesPerQuestion: votes}
			rep, err := RunJoin(u, goal, rellearn.MaxAgreeStrategy{}, cfg, rand.New(rand.NewSource(seed)))
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Failed && rep.Accuracy == 1.0 {
				ok++
			}
		}
		return ok
	}
	okSingle := succeed(1)
	okMajor := succeed(7)
	t.Logf("single-vote successes: %d/20, majority-7: %d/20", okSingle, okMajor)
	if okMajor < okSingle {
		t.Errorf("majority voting should not reduce success rate: %d vs %d", okMajor, okSingle)
	}
}

// failAfterStrategy answers like FirstStrategy for a few questions and then
// derails the run by picking out of range — a deterministic way to make
// rellearn.Run fail mid-dialogue after real HITs were paid.
type failAfterStrategy struct{ after, calls int }

func (f *failAfterStrategy) Pick(_ *rellearn.Session, cands []rellearn.Candidate) int {
	f.calls++
	if f.calls > f.after {
		return len(cands) // out of range → Run returns an error
	}
	return 0
}

func (f *failAfterStrategy) Name() string { return "fail-after" }

// A failed run still paid for every HIT it asked, so the report's Questions
// must match the spent HITs instead of reading 0 — the regression where
// rellearn.Run's partial stats were dropped on error.
func TestRunJoinFailedRunAccountsQuestions(t *testing.T) {
	u := instance(t, 8, 5)
	goal, err := u.Encode([]relational.AttrPair{{Left: "a", Right: "x"}})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{CostPerHIT: 0.05, WorkerErrorRate: 0, VotesPerQuestion: 4} // normalized to 5 votes
	rep, err := RunJoin(u, goal, &failAfterStrategy{after: 3}, cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed {
		t.Fatal("derailed run not reported as failed")
	}
	if rep.Questions != 3 {
		t.Fatalf("failed run reports %d questions, want the 3 asked before the failure", rep.Questions)
	}
	if rep.HITs != 5*rep.Questions {
		t.Errorf("HITs %d != questions %d × 5 votes: the paid work and the stats disagree", rep.HITs, rep.Questions)
	}
	if want := float64(rep.HITs) * 0.05; rep.Cost != want {
		t.Errorf("cost %.2f, want %.2f", rep.Cost, want)
	}
}

// countingOracle sits beneath the flaky layer and counts every question a
// worker actually answered — the ground truth the HIT ledger must match.
type countingOracle struct {
	inner    interact.Oracle[[2]int]
	answered int
}

func (c *countingOracle) Label(p [2]int) bool { c.answered++; return c.inner.Label(p) }

// TestWorkerFailureNeverChargesUnansweredHIT is the mid-dialogue failure
// regression: a worker call that dies (timeout, abandoned HIT) aborts the
// dialogue with an error, and the HIT ledger charges exactly the answered
// calls — never the unanswered one.
func TestWorkerFailureNeverChargesUnansweredHIT(t *testing.T) {
	u := instance(t, 8, 5)
	goal, err := u.Encode([]relational.AttrPair{{Left: "a", Right: "x"}})
	if err != nil {
		t.Fatal(err)
	}
	truth := rellearn.GoalOracle{U: u, Goal: goal}
	counter := &countingOracle{inner: interact.OracleFunc[[2]int](func(p [2]int) bool {
		return truth.LabelPair(p[0], p[1])
	})}
	// Failures are drawn BEFORE the worker answers, so a failed call never
	// reaches the counter — counter.answered is exactly the answered HITs.
	flaky := &interact.FlakyOracle[[2]int]{Inner: counter, ErrorRate: 0.15, Rng: rand.New(rand.NewSource(11))}
	maj := &interact.MajorityOracle[[2]int]{Inner: flaky, K: 3}

	stats, err := rellearn.Run(u, crowdOracle{maj}, rellearn.MaxAgreeStrategy{})
	if !errors.Is(err, interact.ErrOracle) {
		t.Fatalf("seeded flaky dialogue = %v, want an ErrOracle failure mid-run", err)
	}
	if maj.Calls != counter.answered {
		t.Fatalf("charged %d HITs but workers answered %d: an unanswered HIT was charged", maj.Calls, counter.answered)
	}
	// The aborted question charged only its answered votes: full rounds for
	// every completed question, strictly less than a full round on top.
	if maj.Calls < 3*stats.Questions || maj.Calls >= 3*(stats.Questions+1) {
		t.Errorf("Calls = %d with %d completed questions × 3 votes: aborted question mischarged", maj.Calls, stats.Questions)
	}
}

// TestRunJoinWorkerFailRate checks the same property end-to-end through
// RunJoin's own chain and report accounting.
func TestRunJoinWorkerFailRate(t *testing.T) {
	u := instance(t, 8, 5)
	goal, err := u.Encode([]relational.AttrPair{{Left: "a", Right: "x"}})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{CostPerHIT: 0.05, VotesPerQuestion: 3, WorkerFailRate: 0.15}
	rep, err := RunJoin(u, goal, rellearn.MaxAgreeStrategy{}, cfg, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed || !rep.OracleFailed {
		t.Fatalf("worker failure not surfaced: %+v", rep)
	}
	if rep.HITs < 3*rep.Questions || rep.HITs >= 3*(rep.Questions+1) {
		t.Errorf("HITs %d vs %d questions × 3 votes: unanswered HIT charged", rep.HITs, rep.Questions)
	}
	if want := float64(rep.HITs) * 0.05; rep.Cost != want {
		t.Errorf("cost %.4f, want %.4f", rep.Cost, want)
	}

	// Control: without a fail rate the same run completes un-failed.
	cfg.WorkerFailRate = 0
	rep, err = RunJoin(u, goal, rellearn.MaxAgreeStrategy{}, cfg, rand.New(rand.NewSource(11)))
	if err != nil || rep.Failed || rep.OracleFailed {
		t.Fatalf("control run = (%+v, %v)", rep, err)
	}
}

func TestRunJoinNegativeCost(t *testing.T) {
	u := instance(t, 4, 1)
	goal, _ := u.Encode(nil)
	if _, err := RunJoin(u, goal, rellearn.MaxAgreeStrategy{}, Config{CostPerHIT: -1}, rand.New(rand.NewSource(1))); err == nil {
		t.Errorf("negative cost must error")
	}
}
