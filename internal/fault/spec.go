package fault

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// ParseSpec parses the -fault-spec dev-flag syntax into per-point specs:
//
//	point=mode[:key=value]...[,point=mode...]
//
// e.g.
//
//	store.append=error:after=100:times=1
//	store.compact.sync=enospc,server.request=latency:delay=25ms:p=0.1:seed=7
//
// Recognized keys: after, times, every, p, seed, delay (a Go duration),
// bytes, msg. Whitespace around items is ignored.
func ParseSpec(src string) (map[Point]Spec, error) {
	out := map[Point]Spec{}
	for _, item := range strings.Split(src, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		name, rest, ok := strings.Cut(item, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("fault: item %q is not point=mode[:key=value...]", item)
		}
		parts := strings.Split(rest, ":")
		spec := Spec{Mode: strings.TrimSpace(parts[0])}
		for _, kv := range parts[1:] {
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("fault: option %q of point %s is not key=value", kv, name)
			}
			key, val = strings.TrimSpace(key), strings.TrimSpace(val)
			var err error
			switch key {
			case "after":
				spec.After, err = strconv.Atoi(val)
			case "times":
				spec.Times, err = strconv.Atoi(val)
			case "every":
				spec.Every, err = strconv.Atoi(val)
			case "p":
				spec.P, err = strconv.ParseFloat(val, 64)
			case "seed":
				spec.Seed, err = strconv.ParseInt(val, 10, 64)
			case "delay":
				spec.Delay, err = time.ParseDuration(val)
			case "bytes":
				spec.Bytes, err = strconv.Atoi(val)
			case "msg":
				spec.Msg = val
			default:
				return nil, fmt.Errorf("fault: unknown option %q of point %s", key, name)
			}
			if err != nil {
				return nil, fmt.Errorf("fault: option %s of point %s: %v", key, name, err)
			}
		}
		if err := spec.validate(); err != nil {
			return nil, fmt.Errorf("fault: point %s: %w", name, err)
		}
		out[Point(strings.TrimSpace(name))] = spec
	}
	return out, nil
}

// ArmSpec parses src and arms every parsed point on the registry. Unlike
// Arm (which auto-registers, for tests), ArmSpec is the -fault-spec flag
// surface and rejects points nothing has registered: a typo'd point would
// otherwise arm an injection that can never fire.
func (r *Registry) ArmSpec(src string) error {
	specs, err := ParseSpec(src)
	if err != nil {
		return err
	}
	if r == nil {
		return errors.New("fault: arming a nil registry")
	}
	r.mu.Lock()
	for p := range specs {
		if r.known[p] == nil {
			known := make([]string, 0, len(r.known))
			for k := range r.known {
				known = append(known, string(k))
			}
			sort.Strings(known)
			r.mu.Unlock()
			return fmt.Errorf("fault: unknown injection point %q (registered: %s)", p, strings.Join(known, ", "))
		}
	}
	r.mu.Unlock()
	for p, s := range specs {
		if err := r.Arm(p, s); err != nil {
			return err
		}
	}
	return nil
}
