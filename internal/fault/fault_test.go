package fault

import (
	"bytes"
	"errors"
	"syscall"
	"testing"
	"time"
)

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	if inj := r.Fire("x"); inj != nil {
		t.Fatalf("nil registry fired %+v", inj)
	}
	if err := r.Sleep("x"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if w := r.Writer(&buf, "x"); w != &buf {
		t.Error("nil registry wrapped the writer")
	}
	r.Register("x")
	r.Disarm("x")
	r.DisarmAll()
	if got := r.Counts(); got != nil {
		t.Errorf("Counts on nil registry = %v", got)
	}
	if got := r.Points(); got != nil {
		t.Errorf("Points on nil registry = %v", got)
	}
}

func TestUnarmedPointCountsHits(t *testing.T) {
	r := NewRegistry()
	r.Register("a", "b")
	for i := 0; i < 3; i++ {
		if inj := r.Fire("a"); inj != nil {
			t.Fatalf("unarmed point injected %+v", inj)
		}
	}
	c := r.Counts()
	if c["a"].Hits != 3 || c["a"].Injected != 0 {
		t.Errorf("point a = %+v, want 3 hits 0 injected", c["a"])
	}
	if c["b"].Hits != 0 {
		t.Errorf("point b = %+v, want zero", c["b"])
	}
	if got := r.Points(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Points = %v", got)
	}
}

func TestScheduleAfterTimesEvery(t *testing.T) {
	r := NewRegistry()
	// Skip 2 hits, then fire every 2nd eligible hit, at most 3 times.
	if err := r.Arm("p", Spec{Mode: ModeError, After: 2, Every: 2, Times: 3}); err != nil {
		t.Fatal(err)
	}
	var fired []int
	for i := 1; i <= 12; i++ {
		if inj := r.Fire("p"); inj != nil {
			fired = append(fired, i)
			if !errors.Is(inj.Err, ErrInjected) {
				t.Errorf("hit %d: error %v does not wrap ErrInjected", i, inj.Err)
			}
		}
	}
	// Eligible hits are 3,4,5,...; every 2nd of those is 4,6,8; Times=3.
	want := []int{4, 6, 8}
	if len(fired) != len(want) {
		t.Fatalf("fired on hits %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired on hits %v, want %v", fired, want)
		}
	}
	if c := r.Counts()["p"]; c.Injected != 3 || c.Hits != 12 {
		t.Errorf("counts = %+v", c)
	}
	if r.Injected() != 3 {
		t.Errorf("Injected() = %d", r.Injected())
	}
}

func TestSeededProbabilityIsDeterministic(t *testing.T) {
	run := func() []int {
		r := NewRegistry()
		if err := r.Arm("p", Spec{Mode: ModeError, P: 0.3, Seed: 42}); err != nil {
			t.Fatal(err)
		}
		var fired []int
		for i := 0; i < 100; i++ {
			if r.Fire("p") != nil {
				fired = append(fired, i)
			}
		}
		return fired
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) == 100 {
		t.Fatalf("p=0.3 fired %d of 100 times", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different schedules: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different schedules: %v vs %v", a, b)
		}
	}
}

func TestENOSPCMode(t *testing.T) {
	r := NewRegistry()
	if err := r.Arm("disk", Spec{Mode: ModeENOSPC}); err != nil {
		t.Fatal(err)
	}
	err := r.Sleep("disk")
	if !errors.Is(err, syscall.ENOSPC) {
		t.Errorf("enospc injection = %v, want ENOSPC", err)
	}
	if !errors.Is(err, ErrInjected) {
		t.Errorf("enospc injection %v does not wrap ErrInjected", err)
	}
}

func TestPartialWriter(t *testing.T) {
	r := NewRegistry()
	if err := r.Arm("w", Spec{Mode: ModePartial, Bytes: 5, Times: 1}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := r.Writer(&buf, "w")
	n, err := w.Write([]byte("hello world"))
	if err == nil || n != 5 {
		t.Fatalf("partial write = (%d, %v), want (5, injected error)", n, err)
	}
	if buf.String() != "hello" {
		t.Errorf("prefix on disk = %q, want %q (the torn-record bytes must land)", buf.String(), "hello")
	}
	// Times spent: the next write goes through untouched.
	if n, err := w.Write([]byte("rest")); err != nil || n != 4 {
		t.Fatalf("post-schedule write = (%d, %v)", n, err)
	}
	if buf.String() != "hellorest" {
		t.Errorf("buffer = %q", buf.String())
	}
}

func TestLatencyMode(t *testing.T) {
	r := NewRegistry()
	if err := r.Arm("slow", Spec{Mode: ModeLatency, Delay: 20 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := r.Sleep("slow"); err != nil {
		t.Fatalf("latency injection surfaced an error: %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Errorf("latency injection slept %v, want >= 20ms", d)
	}
}

func TestDisarmAndRearm(t *testing.T) {
	r := NewRegistry()
	if err := r.Arm("p", Spec{Mode: ModeError}); err != nil {
		t.Fatal(err)
	}
	if r.Fire("p") == nil {
		t.Fatal("armed point did not fire")
	}
	r.Disarm("p")
	if r.Fire("p") != nil {
		t.Fatal("disarmed point fired")
	}
	// The point stays registered for metrics.
	if _, ok := r.Counts()["p"]; !ok {
		t.Error("disarmed point vanished from Counts")
	}
}

func TestArmRejectsBadSpecs(t *testing.T) {
	r := NewRegistry()
	for _, s := range []Spec{
		{Mode: "nope"},
		{Mode: ModeError, P: 1.5},
		{Mode: ModePartial, Bytes: -1},
	} {
		if err := r.Arm("p", s); err == nil {
			t.Errorf("Arm accepted invalid spec %+v", s)
		}
	}
}

func TestParseSpec(t *testing.T) {
	specs, err := ParseSpec("store.append=error:after=100:times=1, store.compact.sync=enospc,server.request=latency:delay=25ms:p=0.1:seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("parsed %d specs: %v", len(specs), specs)
	}
	ap := specs["store.append"]
	if ap.Mode != ModeError || ap.After != 100 || ap.Times != 1 {
		t.Errorf("store.append = %+v", ap)
	}
	if specs["store.compact.sync"].Mode != ModeENOSPC {
		t.Errorf("store.compact.sync = %+v", specs["store.compact.sync"])
	}
	sr := specs["server.request"]
	if sr.Mode != ModeLatency || sr.Delay != 25*time.Millisecond || sr.P != 0.1 || sr.Seed != 7 {
		t.Errorf("server.request = %+v", sr)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, src := range []string{
		"noequals",
		"p=unknownmode",
		"p=error:bogus=1",
		"p=error:times=x",
		"p=error:delay=notaduration",
		"p=error:times",
	} {
		if _, err := ParseSpec(src); err == nil {
			t.Errorf("ParseSpec(%q) accepted", src)
		}
	}
}

func TestArmSpec(t *testing.T) {
	r := NewRegistry()
	r.Register("a", "b")
	if err := r.ArmSpec("a=error:times=1,b=latency:delay=1ms"); err != nil {
		t.Fatal(err)
	}
	// The flag surface is strict: a point nothing registered is a typo, not
	// a silent no-op.
	if err := r.ArmSpec("tpyo=error"); err == nil {
		t.Error("ArmSpec accepted an unregistered point")
	}
	if r.Fire("a") == nil {
		t.Error("armed point a did not fire")
	}
	if inj := r.Fire("b"); inj == nil || inj.Err != nil || inj.Delay != time.Millisecond {
		t.Errorf("point b injection = %+v", inj)
	}
}
