// Package fault is the deterministic fault-injection layer behind the
// chaos suite and the daemon's -fault-spec dev flag. Code under test
// declares named injection points at its syscall-shaped edges (a journal
// append, an fsync, a snapshot rename); tests and operators arm those
// points with a Spec — fail with an error, fail with ENOSPC, write only a
// prefix then fail (a torn record), or add latency — on a deterministic,
// seeded schedule. A point that is not armed costs one mutex-guarded map
// lookup, and a nil *Registry costs nothing at all, so production builds
// carry the hooks without carrying the risk.
//
// Schedules are reproducible by construction: the counting knobs (After,
// Times, Every) are plain hit arithmetic, and the probabilistic knob (P)
// draws from a per-point rand.Rand seeded by Spec.Seed — the same spec
// against the same call sequence injects the same faults.
package fault

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
	"syscall"
	"time"
)

// Point names one injection point. Packages declare their points as
// constants (e.g. store.append, store.compact.rename) and register them so
// the chaos suite can enumerate every edge and /metrics can report zeroes
// for the quiet ones.
type Point string

// Modes for Spec.Mode.
const (
	// ModeError fails the operation with a generic injected error (or
	// Spec.Msg).
	ModeError = "error"
	// ModeENOSPC fails the operation with an error wrapping
	// syscall.ENOSPC — the disk-full case every append and compaction
	// path must survive.
	ModeENOSPC = "enospc"
	// ModePartial applies to write-shaped points: the first Spec.Bytes
	// bytes are written through to the underlying writer, then the write
	// fails — a torn record, the shape a crash leaves mid-append.
	ModePartial = "partial"
	// ModeLatency delays the operation by Spec.Delay and lets it proceed —
	// a slow disk or a GC-stalled peer, not a broken one.
	ModeLatency = "latency"
)

// ErrInjected is the base error every injected failure wraps, so tests can
// errors.Is a surfaced error back to the injection layer.
var ErrInjected = errors.New("fault injected")

// Spec arms one injection point. The zero value of every field means
// "no constraint": fire on every hit, forever.
type Spec struct {
	// Mode is one of ModeError, ModeENOSPC, ModePartial, ModeLatency.
	Mode string
	// After skips the first After hits of the point before the schedule
	// starts firing.
	After int
	// Times caps the number of injections (0 = unlimited). A point whose
	// Times are spent behaves as if unarmed.
	Times int
	// Every fires on every Every-th eligible hit (0 or 1 = every hit).
	Every int
	// P fires each eligible hit with probability P (0 = always fire),
	// drawn from a rand.Rand seeded with Seed — the same spec against the
	// same call sequence injects the same faults.
	P    float64
	Seed int64
	// Delay is the injected latency (ModeLatency, or added to any mode).
	Delay time.Duration
	// Bytes is how much of the payload a ModePartial write lets through
	// before failing.
	Bytes int
	// Msg overrides the injected error message.
	Msg string
}

func (s Spec) validate() error {
	switch s.Mode {
	case ModeError, ModeENOSPC, ModePartial, ModeLatency:
	default:
		return fmt.Errorf("fault: unknown mode %q (want %q, %q, %q, or %q)",
			s.Mode, ModeError, ModeENOSPC, ModePartial, ModeLatency)
	}
	if s.P < 0 || s.P > 1 {
		return fmt.Errorf("fault: probability %v outside [0, 1]", s.P)
	}
	if s.Bytes < 0 {
		return fmt.Errorf("fault: negative partial-write bytes %d", s.Bytes)
	}
	return nil
}

// err builds the injected error for a firing of point p.
func (s Spec) err(p Point) error {
	switch s.Mode {
	case ModeLatency:
		return nil
	case ModeENOSPC:
		return fmt.Errorf("%w at %s: %w", ErrInjected, p, syscall.ENOSPC)
	}
	msg := s.Msg
	if msg == "" {
		msg = "injected " + s.Mode
	}
	return fmt.Errorf("%w at %s: %s", ErrInjected, p, msg)
}

// Injection is one firing of an armed point. A nil *Injection means the
// operation proceeds untouched.
type Injection struct {
	// Err is the failure to surface; nil for a pure latency injection.
	Err error
	// Delay is slept before the operation (latency mode, or any mode with
	// Spec.Delay set).
	Delay time.Duration
	// Partial is the byte prefix a write lets through before failing
	// (ModePartial only; -1 otherwise).
	Partial int
}

// armed is the live schedule state of one point.
type armed struct {
	spec     Spec
	hits     int64 // hits since arming (the schedule's clock)
	eligible int64 // hits past After
	injected int64
	rng      *rand.Rand
}

// Stats is one point's counter snapshot for /metrics: how often the point
// was crossed and how many faults it injected.
type Stats struct {
	Hits     int64 `json:"hits"`
	Injected int64 `json:"injected"`
}

// Registry tracks a set of injection points. The zero value is not usable;
// construct with NewRegistry. A nil *Registry is the disabled layer: every
// method is a safe no-op and Fire always returns nil.
type Registry struct {
	mu     sync.Mutex
	points map[Point]*armed
	// known remembers every registered point (armed or not) plus its
	// lifetime hit count, so enumeration and metrics cover quiet points.
	known map[Point]*Stats
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{points: map[Point]*armed{}, known: map[Point]*Stats{}}
}

// Register declares points so they appear in Points and Counts before ever
// being armed or crossed. Registering an existing point is a no-op.
func (r *Registry) Register(points ...Point) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, p := range points {
		if r.known[p] == nil {
			r.known[p] = &Stats{}
		}
	}
}

// Arm installs a schedule at a point. Re-arming replaces the previous
// schedule and restarts its hit counting.
func (r *Registry) Arm(p Point, s Spec) error {
	if r == nil {
		return errors.New("fault: arming a nil registry")
	}
	if err := s.validate(); err != nil {
		return err
	}
	a := &armed{spec: s}
	if s.P > 0 {
		a.rng = rand.New(rand.NewSource(s.Seed))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.known[p] == nil {
		r.known[p] = &Stats{}
	}
	r.points[p] = a
	return nil
}

// Disarm removes a point's schedule; the point stays registered.
func (r *Registry) Disarm(p Point) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.points, p)
}

// DisarmAll removes every schedule (between chaos test cases).
func (r *Registry) DisarmAll() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.points = map[Point]*armed{}
}

// Fire records one crossing of a point and returns the injection to apply,
// or nil to proceed untouched. Callers sleep Injection.Delay themselves
// (Sleep does both), so firings stay cheap under locks that must not stall.
func (r *Registry) Fire(p Point) *Injection {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.known[p]
	if st == nil {
		st = &Stats{}
		r.known[p] = st
	}
	st.Hits++
	a := r.points[p]
	if a == nil {
		return nil
	}
	a.hits++
	if a.spec.Times > 0 && a.injected >= int64(a.spec.Times) {
		return nil
	}
	if a.hits <= int64(a.spec.After) {
		return nil
	}
	a.eligible++
	if every := int64(a.spec.Every); every > 1 && a.eligible%every != 0 {
		return nil
	}
	if a.rng != nil && a.rng.Float64() >= a.spec.P {
		return nil
	}
	a.injected++
	st.Injected++
	inj := &Injection{Err: a.spec.err(p), Delay: a.spec.Delay, Partial: -1}
	if a.spec.Mode == ModePartial {
		inj.Partial = a.spec.Bytes
	}
	return inj
}

// Sleep fires a point and applies its latency inline, returning the error
// to surface (nil to proceed). The one-line form for call sites that are
// not holding a contended lock.
func (r *Registry) Sleep(p Point) error {
	inj := r.Fire(p)
	if inj == nil {
		return nil
	}
	if inj.Delay > 0 {
		time.Sleep(inj.Delay)
	}
	return inj.Err
}

// Writer wraps w so writes crossing point p honor its schedule: an armed
// error fails the write, and ModePartial writes only the spec'd prefix
// through before failing — the torn-record shape.
func (r *Registry) Writer(w io.Writer, p Point) io.Writer {
	if r == nil {
		return w
	}
	return &faultWriter{w: w, r: r, p: p}
}

type faultWriter struct {
	w io.Writer
	r *Registry
	p Point
}

func (fw *faultWriter) Write(b []byte) (int, error) {
	inj := fw.r.Fire(fw.p)
	if inj == nil {
		return fw.w.Write(b)
	}
	if inj.Delay > 0 {
		time.Sleep(inj.Delay)
	}
	if inj.Err == nil {
		return fw.w.Write(b)
	}
	n := 0
	if inj.Partial > 0 {
		cut := inj.Partial
		if cut > len(b) {
			cut = len(b)
		}
		// Write the prefix through for real: the bytes must land so the
		// torn record exists on disk, exactly like a crash mid-write.
		var werr error
		n, werr = fw.w.Write(b[:cut])
		if werr != nil {
			return n, fmt.Errorf("%v (and %v)", inj.Err, werr)
		}
	}
	return n, inj.Err
}

// Points lists every registered point in sorted order.
func (r *Registry) Points() []Point {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Point, 0, len(r.known))
	for p := range r.known {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Counts snapshots every registered point's hit and injection counters —
// the faults_injected block of /metrics.
func (r *Registry) Counts() map[string]Stats {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]Stats, len(r.known))
	for p, st := range r.known {
		out[string(p)] = *st
	}
	return out
}

// Injected sums the injected-fault counters across all points.
func (r *Registry) Injected() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var n int64
	for _, st := range r.known {
		n += st.Injected
	}
	return n
}
