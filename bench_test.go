package querylearn_test

// One benchmark per experiment of DESIGN.md's index (T1–T10, F1) measuring
// the hot path behind each table, plus the ablation benches of DESIGN.md §5.
// The tables themselves are produced by cmd/benchrunner; these benches give
// ns/op and allocs for the underlying operations.

import (
	"fmt"
	"math/rand"
	"testing"

	"querylearn/internal/crowd"
	"querylearn/internal/experiments"
	"querylearn/internal/graph"
	"querylearn/internal/graphlearn"
	"querylearn/internal/relational"
	"querylearn/internal/rellearn"
	"querylearn/internal/schema"
	"querylearn/internal/schemalearn"
	"querylearn/internal/twig"
	"querylearn/internal/twiglearn"
	"querylearn/internal/xmark"
	"querylearn/internal/xmltree"
)

// --- T1: twig learning from examples ---

func BenchmarkT1ExamplesToConvergence(b *testing.B) {
	goal := twig.MustParseQuery("/site/people/person[address]/name")
	docs := []*xmltree.Node{
		xmark.Generate(1, xmark.ScaleConfig(2)),
		xmark.Generate(2, xmark.ScaleConfig(2)),
	}
	exs := twiglearn.ExamplesFromQuery(goal, docs)
	if len(exs) == 0 {
		b.Skip("no examples on these seeds")
	}
	opts := twiglearn.DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := twiglearn.Learn(exs[:2], opts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- T2: XPathMark catalog evaluation ---

func BenchmarkT2XPathMarkCoverage(b *testing.B) {
	doc := xmark.Generate(3, xmark.ScaleConfig(4))
	queries := xmark.TwigQueries()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			_ = q.Eval(doc)
		}
	}
}

// --- T3: schema-aware learning ---

func BenchmarkT3Overspecialization(b *testing.B) {
	goal := twig.MustParseQuery("/site/people/person/name")
	docs := []*xmltree.Node{
		xmark.Generate(1, xmark.ScaleConfig(2)),
		xmark.Generate(2, xmark.ScaleConfig(2)),
	}
	exs := twiglearn.ExamplesFromQuery(goal, docs)
	s := xmark.Schema()
	for _, withSchema := range []bool{false, true} {
		name := "plain"
		if withSchema {
			name = "schema"
		}
		b.Run(name, func(b *testing.B) {
			opts := twiglearn.Options{UseFilters: true, MaxFilterDepth: 3}
			if withSchema {
				opts.Schema = s
			}
			for i := 0; i < b.N; i++ {
				if _, err := twiglearn.Learn(exs, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- T4: containment ---

func BenchmarkT4SchemaContainment(b *testing.B) {
	for _, n := range []int{10, 40, 160} {
		tight, loose := experiments.RandomDMSPair(int64(n), n)
		b.Run(fmt.Sprintf("DMS-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				schema.Contained(tight, loose)
			}
		})
	}
	for _, k := range []int{4, 8} {
		r1, r2 := experiments.HardRegexPair(k)
		b.Run(fmt.Sprintf("regex-%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				schema.RegexContained(r1, r2)
			}
		})
	}
}

// --- T5: satisfiability and implication ---

func BenchmarkT5SatImplication(b *testing.B) {
	for _, n := range []int{50, 200} {
		s := experiments.ChainSchema(n)
		q := twig.MustParseQuery(fmt.Sprintf("/c0//c%d[s%d]", n/2, n/2))
		b.Run(fmt.Sprintf("sat-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				schema.Satisfiable(q, s)
			}
		})
		branch := &twig.Node{Label: fmt.Sprintf("c%d", n-1), Axis: twig.Descendant}
		b.Run(fmt.Sprintf("implied-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				schema.Implied(branch, "c0", s)
			}
		})
	}
}

// --- T6: consistency join vs semijoin ---

func BenchmarkT6ConsistencyJoinVsSemijoin(b *testing.B) {
	for _, k := range []int{4, 8} {
		l, r := experiments.RandomJoinInstance(int64(k)*7, k, 16, 2)
		u := rellearn.NewUniverse(l, r)
		rng := rand.New(rand.NewSource(int64(k)))
		var joinExs []rellearn.JoinExample
		for i := 0; i < 8; i++ {
			joinExs = append(joinExs, rellearn.JoinExample{
				Left: rng.Intn(l.Len()), Right: rng.Intn(r.Len()), Positive: rng.Intn(2) == 0})
		}
		var semiExs []rellearn.SemijoinExample
		for i := 0; i < l.Len(); i++ {
			semiExs = append(semiExs, rellearn.SemijoinExample{Left: i, Positive: rng.Intn(2) == 0})
		}
		b.Run(fmt.Sprintf("join-%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rellearn.JoinConsistent(u, joinExs)
			}
		})
		b.Run(fmt.Sprintf("semijoin-%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, _, err := rellearn.SemijoinConsistent(u, semiExs, 1<<22); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- T6b: semijoin consistency, retained naive search vs interned/bitset
// search (the tentpole's rellearn half) ---

func BenchmarkT6SemijoinExactNaiveVsFast(b *testing.B) {
	for _, k := range []int{4, 8} {
		l, r := experiments.RandomJoinInstance(int64(k)*7, k, 16, 2)
		rng := rand.New(rand.NewSource(int64(k)))
		var exs []rellearn.SemijoinExample
		for i := 0; i < l.Len(); i++ {
			exs = append(exs, rellearn.SemijoinExample{Left: i, Positive: rng.Intn(2) == 0})
		}
		b.Run(fmt.Sprintf("naive-%d", k), func(b *testing.B) {
			u := rellearn.NewUniverse(l, r)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := rellearn.SemijoinConsistentNaive(u, exs, 1<<22); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("fast-%d", k), func(b *testing.B) {
			u := rellearn.NewUniverse(l, r)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := rellearn.SemijoinConsistent(u, exs, 1<<22); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- T8b: all-pairs path evaluation, retained naive product BFS vs the
// CSR/bitset parallel evaluator (the tentpole's graph half) ---

func BenchmarkT8EvalAllPairsNaiveVsFast(b *testing.B) {
	for _, n := range []int{60, 240} {
		g := graph.GenerateGeo(int64(n), n)
		q := graph.MustParsePathQuery("highway.road*")
		b.Run(fmt.Sprintf("naive-%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = g.EvalNaive(q)
			}
		})
		b.Run(fmt.Sprintf("fast-%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = g.Eval(q)
			}
		})
	}
}

// --- T7: interactive join learning ---

func BenchmarkT7Interactions(b *testing.B) {
	l, r := experiments.RandomJoinInstance(60, 4, 20, 3)
	u := rellearn.NewUniverse(l, r)
	goal, err := u.Encode([]relational.AttrPair{{Left: "a0", Right: "b0"}, {Left: "a1", Right: "b1"}})
	if err != nil {
		b.Fatal(err)
	}
	oracle := rellearn.GoalOracle{U: u, Goal: goal}
	for _, strat := range []rellearn.Strategy{rellearn.MaxAgreeStrategy{}, rellearn.HalfSplitStrategy{}} {
		b.Run(strat.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rellearn.Run(u, oracle, strat); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- T8: interactive path learning ---

func BenchmarkT8GraphInteractions(b *testing.B) {
	g := graph.GenerateGeo(11, 60)
	goal := graph.MustParsePathQuery("highway.road*")
	var seed graph.Pair
	found := false
	for _, p := range g.Eval(goal) {
		w := g.ShortestWord(p.Src, p.Dst)
		if len(w) >= 3 && w[0] == "highway" {
			ok := true
			for _, l := range w[1:] {
				if l != "road" {
					ok = false
					break
				}
			}
			if ok {
				seed, found = p, true
				break
			}
		}
	}
	if !found {
		b.Skip("no suitable seed")
	}
	pool := graphlearn.DefaultPool(g, 4, 500)
	oracle := graphlearn.GoalOracle{G: g, Goal: goal}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graphlearn.Run(g, seed, pool, oracle, graphlearn.SplitStrategy{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- T9: crowd cost ---

func BenchmarkT9CrowdCost(b *testing.B) {
	l, r := experiments.RandomJoinInstance(99, 4, 15, 3)
	u := rellearn.NewUniverse(l, r)
	goal, err := u.Encode([]relational.AttrPair{{Left: "a0", Right: "b0"}})
	if err != nil {
		b.Fatal(err)
	}
	cfg := crowd.Config{CostPerHIT: 0.05, WorkerErrorRate: 0.1, VotesPerQuestion: 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := crowd.RunJoin(u, goal, rellearn.MaxAgreeStrategy{}, cfg, rand.New(rand.NewSource(int64(i)))); err != nil {
			b.Fatal(err)
		}
	}
}

// --- T10: schema learning ---

func BenchmarkT10SchemaLearning(b *testing.B) {
	goal := xmark.Schema()
	rng := rand.New(rand.NewSource(1))
	docs := make([]*xmltree.Node, 20)
	for i := range docs {
		docs[i] = goal.Generate(rng, 6)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := schemalearn.Learn(docs); err != nil {
			b.Fatal(err)
		}
	}
}

// --- F1: exchange scenarios ---

func BenchmarkF1ExchangeScenarios(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.F1ExchangeScenarios()
	}
}

// --- Ablations (DESIGN.md §5) ---

// DMS containment: structural PTIME algorithm vs the brute-force bag
// enumerator used as its correctness oracle.
func BenchmarkAblationDMSContainment(b *testing.B) {
	e := schema.MustExpr(
		schema.Disjunct{"a": schema.M1, "b": schema.MOpt, "c": schema.MStar},
		schema.Disjunct{"d": schema.MPlus, "e": schema.MOpt})
	f := schema.MustExpr(
		schema.Disjunct{"a": schema.MOpt, "b": schema.MStar, "c": schema.MStar},
		schema.Disjunct{"d": schema.MStar, "e": schema.MStar})
	b.Run("ptime", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			schema.ExprContained(e, f)
		}
	})
	b.Run("brute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			schema.ExprContainedBrute(e, f)
		}
	})
}

// Semijoin: exact backtracking vs greedy approximation.
func BenchmarkAblationSemijoinGreedy(b *testing.B) {
	l, r := experiments.RandomJoinInstance(7, 6, 16, 2)
	u := rellearn.NewUniverse(l, r)
	rng := rand.New(rand.NewSource(3))
	var exs []rellearn.SemijoinExample
	for i := 0; i < l.Len(); i++ {
		exs = append(exs, rellearn.SemijoinExample{Left: i, Positive: rng.Intn(2) == 0})
	}
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, _, err := rellearn.SemijoinConsistent(u, exs, 1<<22); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rellearn.SemijoinGreedy(u, exs)
		}
	})
}

// Twig learner: minimization on vs off.
func BenchmarkAblationTwigMinimize(b *testing.B) {
	goal := twig.MustParseQuery("//person[address]/name")
	docs := []*xmltree.Node{
		xmark.Generate(5, xmark.ScaleConfig(1)),
		xmark.Generate(6, xmark.ScaleConfig(1)),
	}
	exs := twiglearn.ExamplesFromQuery(goal, docs)
	if len(exs) == 0 {
		b.Skip("no examples")
	}
	for _, min := range []bool{false, true} {
		name := "raw"
		if min {
			name = "minimized"
		}
		b.Run(name, func(b *testing.B) {
			opts := twiglearn.DefaultOptions()
			opts.Minimize = min
			for i := 0; i < b.N; i++ {
				if _, err := twiglearn.Learn(exs, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Interactive join learning: uninformative-tuple pruning is what separates
// the question count from the full pair count; compare a strategy-driven
// run against exhaustively labeling every pair.
func BenchmarkAblationPruningVsExhaustive(b *testing.B) {
	l, r := experiments.RandomJoinInstance(42, 3, 15, 3)
	u := rellearn.NewUniverse(l, r)
	goal, err := u.Encode([]relational.AttrPair{{Left: "a0", Right: "b0"}})
	if err != nil {
		b.Fatal(err)
	}
	oracle := rellearn.GoalOracle{U: u, Goal: goal}
	b.Run("pruned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rellearn.Run(u, oracle, rellearn.MaxAgreeStrategy{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("exhaustive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// Label every pair: the no-pruning baseline.
			var exs []rellearn.JoinExample
			for li := 0; li < l.Len(); li++ {
				for ri := 0; ri < r.Len(); ri++ {
					exs = append(exs, rellearn.JoinExample{
						Left: li, Right: ri, Positive: oracle.LabelPair(li, ri)})
				}
			}
			if _, ok := rellearn.JoinConsistent(u, exs); !ok {
				b.Fatal("inconsistent")
			}
		}
	})
}

// Filter mining window: unrestricted (the overspecializing learner T3
// measures) vs anchored-near-output (the default).
func BenchmarkAblationFilterWindow(b *testing.B) {
	goal := twig.MustParseQuery("/site/people/person/name")
	docs := []*xmltree.Node{
		xmark.Generate(1, xmark.ScaleConfig(2)),
		xmark.Generate(2, xmark.ScaleConfig(2)),
	}
	exs := twiglearn.ExamplesFromQuery(goal, docs)
	for _, window := range []int{0, 2} {
		name := "unrestricted"
		if window > 0 {
			name = fmt.Sprintf("window-%d", window)
		}
		b.Run(name, func(b *testing.B) {
			opts := twiglearn.DefaultOptions()
			opts.FilterWindow = window
			for i := 0; i < b.N; i++ {
				if _, err := twiglearn.Learn(exs, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// PAC learning: approximate hypothesis at varying error budgets.
func BenchmarkPACLearning(b *testing.B) {
	goal := twig.MustParseQuery("/site/people/person[address]/name")
	var pool []twiglearn.Example
	for i := 0; i < 3; i++ {
		doc := xmark.Generate(int64(i+1), xmark.ScaleConfig(1))
		sel := map[*xmltree.Node]bool{}
		for _, n := range goal.Eval(doc) {
			sel[n] = true
		}
		doc.Walk(func(n *xmltree.Node) bool {
			if sel[n] {
				pool = append(pool, twiglearn.Example{Doc: doc, Node: n, Positive: true})
			} else if n.Label == "name" {
				pool = append(pool, twiglearn.Example{Doc: doc, Node: n, Positive: false})
			}
			return true
		})
	}
	if len(pool) == 0 {
		b.Skip("empty pool")
	}
	for _, eps := range []float64{0.2, 0.05} {
		b.Run(fmt.Sprintf("eps-%v", eps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := twiglearn.LearnPAC(pool, eps, 0.1, twiglearn.DefaultOptions(), rand.New(rand.NewSource(int64(i)))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Union-of-twigs learning (the paper's richer class).
func BenchmarkUnionLearning(b *testing.B) {
	doc := xmltree.MustParse(`<shop><item><title/><price/></item><item><title/></item></shop>`)
	exs := []twiglearn.Example{
		{Doc: doc, Node: doc.Children[0].Children[0], Positive: true},
		{Doc: doc, Node: doc.Children[0].Children[1], Positive: true},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := twiglearn.LearnUnion(exs, twiglearn.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// Approximate semijoin learning with annotation dropping.
func BenchmarkSemijoinApprox(b *testing.B) {
	l, r := experiments.RandomJoinInstance(3, 4, 20, 2)
	u := rellearn.NewUniverse(l, r)
	rng := rand.New(rand.NewSource(4))
	var exs []rellearn.SemijoinExample
	for i := 0; i < l.Len(); i++ {
		exs = append(exs, rellearn.SemijoinExample{Left: i, Positive: rng.Intn(2) == 0})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rellearn.SemijoinApprox(u, exs)
	}
}
