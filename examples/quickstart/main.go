// Quickstart: learn a twig query from two annotated XML documents.
//
// A user who cannot write XPath points at the nodes they want — here the
// titles of books that have a year — and the learner produces the query.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"querylearn/internal/core"
	"querylearn/internal/twiglearn"
	"querylearn/internal/xmltree"
)

func main() {
	// Two documents from the same source.
	doc1 := xmltree.MustParse(
		`<lib><book><title>Logic</title><year>1999</year></book>` +
			`<book><title>Drafts</title></book></lib>`)
	doc2 := xmltree.MustParse(
		`<lib><book><year>2001</year><title>Graphs</title></book>` +
			`<book><year>2005</year></book></lib>`)

	// The user selects the two titles of dated books as positive
	// examples (child-index paths: first book's first child, etc.).
	title1 := doc1.Children[0].Children[0]
	title2 := doc2.Children[0].Children[1]
	examples := []twiglearn.Example{
		{Doc: doc1, Node: title1, Positive: true},
		{Doc: doc2, Node: title2, Positive: true},
		// ... and marks the undated book's title as unwanted.
		{Doc: doc1, Node: doc1.Children[1].Children[0], Positive: false},
	}

	q, err := core.LearnXMLQuery(examples, core.XMLOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("learned query:", q)

	// Apply it to a document the learner never saw.
	doc3 := xmltree.MustParse(
		`<lib><book><title>New</title><year>2013</year></book>` +
			`<book><title>Undated</title></book></lib>`)
	for _, n := range q.Eval(doc3) {
		fmt.Printf("selected on fresh doc: <%s>%s</%s>\n", n.Label, n.Text, n.Label)
	}
}
