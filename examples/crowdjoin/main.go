// crowdjoin prices interactive join learning under the crowdsourcing model
// of §3 (after Marcus et al.): every question is a paid Human Intelligence
// Task, workers err, and majority voting buys reliability with money. The
// smart question-selection strategy translates directly into dollars saved.
//
//	go run ./examples/crowdjoin
package main

import (
	"fmt"
	"log"
	"math/rand"

	"querylearn/internal/crowd"
	"querylearn/internal/relational"
	"querylearn/internal/rellearn"
)

func main() {
	// Two product catalogs to be matched by the crowd.
	rng := rand.New(rand.NewSource(5))
	left := relational.MustNew("catalogA", "sku", "brand", "color")
	right := relational.MustNew("catalogB", "code", "maker", "shade")
	brands := []string{"acme", "globex", "initech"}
	colors := []string{"red", "blue", "green"}
	for i := 0; i < 12; i++ {
		sku := fmt.Sprintf("s%d", i%8)
		if err := left.Insert(sku, brands[rng.Intn(3)], colors[rng.Intn(3)]); err != nil {
			log.Fatal(err)
		}
		if err := right.Insert(fmt.Sprintf("s%d", rng.Intn(8)), brands[rng.Intn(3)], colors[rng.Intn(3)]); err != nil {
			log.Fatal(err)
		}
	}
	u := rellearn.NewUniverse(left, right)
	goal, err := u.Encode([]relational.AttrPair{{Left: "sku", Right: "code"}})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("instance: %d x %d tuples = %d candidate pairs\n",
		left.Len(), right.Len(), left.Len()*right.Len())
	fmt.Println("goal (hidden from the crowd): sku=code")
	fmt.Println()
	fmt.Printf("%-10s %-6s %-6s %-10s %-8s %-8s\n",
		"strategy", "votes", "error", "questions", "cost $", "exact?")

	configs := []struct {
		strat rellearn.Strategy
		votes int
		errR  float64
	}{
		{rellearn.RandomStrategy{Rng: rand.New(rand.NewSource(1))}, 1, 0},
		{rellearn.MaxAgreeStrategy{}, 1, 0},
		{rellearn.MaxAgreeStrategy{}, 1, 0.2},
		{rellearn.MaxAgreeStrategy{}, 5, 0.2},
	}
	for _, c := range configs {
		cfg := crowd.Config{CostPerHIT: 0.05, WorkerErrorRate: c.errR, VotesPerQuestion: c.votes}
		rep, err := crowd.RunJoin(u, goal, c.strat, cfg, rand.New(rand.NewSource(9)))
		if err != nil {
			log.Fatal(err)
		}
		exact := "yes"
		if rep.Failed {
			exact = "failed"
		} else if rep.Accuracy < 1 {
			exact = fmt.Sprintf("%.0f%%", 100*rep.Accuracy)
		}
		fmt.Printf("%-10s %-6d %-6.0f %-10d %-8.2f %-8s\n",
			rep.Strategy, c.votes, 100*c.errR, rep.Questions, rep.Cost, exact)
	}
	fmt.Println("\nmajority voting multiplies HITs per question; the smart strategy")
	fmt.Println("keeps the question count (and thus the bill) low either way.")
}
