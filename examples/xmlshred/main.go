// xmlshred demonstrates Figure 1's scenario 2 — shredding XML into a
// relational database via a learned twig query — on XMark-style auction
// documents, including the paper's schema-aware optimization that keeps
// the learned query from overspecializing.
//
//	go run ./examples/xmlshred
package main

import (
	"fmt"
	"log"

	"querylearn/internal/exchange"
	"querylearn/internal/twig"
	"querylearn/internal/twiglearn"
	"querylearn/internal/xmark"
	"querylearn/internal/xmltree"
)

func main() {
	// An auction site's documents (stand-ins for the XMark benchmark).
	docs := []*xmltree.Node{
		xmark.Generate(1, xmark.ScaleConfig(1)),
		xmark.Generate(2, xmark.ScaleConfig(1)),
		xmark.Generate(3, xmark.ScaleConfig(1)),
	}

	// Simulate the user: they want the persons, so they annotate the
	// nodes a hidden goal query selects.
	goal := twig.MustParseQuery("/site/people/person")
	examples := twiglearn.ExamplesFromQuery(goal, docs)
	fmt.Printf("user annotated %d person nodes across %d documents\n", len(examples), len(docs))

	// Learn the extraction query twice: plain, and with the XMark schema
	// pruning implied filters (the paper's optimized learner).
	plainOpts := twiglearn.DefaultOptions()
	plainOpts.Minimize = false
	plain, err := twiglearn.Learn(examples, plainOpts)
	if err != nil {
		log.Fatal(err)
	}
	schemaOpts := plainOpts
	schemaOpts.Schema = xmark.Schema()
	optimized, err := twiglearn.Learn(examples, schemaOpts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plain learned query:      %3d pattern nodes\n", plain.Size())
	fmt.Printf("schema-optimized query:   %3d pattern nodes (%.0f%% smaller)\n",
		optimized.Size(), 100*float64(plain.Size()-optimized.Size())/float64(plain.Size()))

	// Shred the selected nodes into a relation (scenario 2 end to end).
	res, err := exchange.Scenario2(docs, examples, schemaOpts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shredded relation: %d tuples, attributes %v\n",
		res.Relation.Len(), res.Relation.Attrs)
	for i := 0; i < res.Relation.Len() && i < 3; i++ {
		name, _ := res.Relation.Value(i, "name")
		fmt.Printf("  tuple %d: name=%q\n", i, name)
	}

	// The same learned query also feeds scenario 3: XML -> RDF.
	res3, err := exchange.Scenario3(docs, examples, schemaOpts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("as RDF: %d triples over %d graph nodes\n",
		res3.Graph.NumEdges(), res3.Graph.NumNodes())
}
