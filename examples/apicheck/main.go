// Command apicheck is the external-consumer compile check for the public
// SDK: a separate Go module that imports only querylearn/pkg/api and
// querylearn/pkg/client, exercising the typed surface a third-party crowd
// frontend would use. It is built (not run) by `make api-check`; running it
// against a live daemon drives one tiny join dialogue.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"querylearn/pkg/api"
	"querylearn/pkg/client"
)

const task = `left P id,city
lrow 1,lille
lrow 2,paris
right O buyer,place
rrow 1,lille
rrow 2,rome
`

func main() {
	addr := flag.String("addr", "http://localhost:8080", "querylearnd base URL")
	flag.Parse()
	if err := run(*addr); err != nil {
		fmt.Fprintln(os.Stderr, "apicheck:", err)
		os.Exit(1)
	}
}

func run(base string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	c := client.New(base, client.WithRetry(2, 100*time.Millisecond))

	created, err := c.Create(ctx, api.CreateRequest{Model: "join", Task: task, MaxCost: 5})
	if err != nil {
		if api.IsCode(err, api.CodeTooManySessions) {
			return fmt.Errorf("daemon is at capacity, try later: %w", err)
		}
		return err
	}
	fmt.Printf("session %s (%s)\n", created.ID, created.Model)

	for {
		qs, err := c.Questions(ctx, created.ID, api.MaxQuestionBatch)
		if err != nil {
			return err
		}
		if len(qs) == 0 {
			break
		}
		answers := make([]api.Answer, len(qs))
		for i, q := range qs {
			fmt.Printf("  Q: %s\n", q.Prompt)
			// The "crowd" of this example says yes to the first pair only.
			answers[i] = api.Answer{Item: q.Item, Positive: i == 0 && q.Remaining == len(qs)}
		}
		if _, err := c.Answers(ctx, created.ID, answers, api.ReconcileNone); err != nil {
			return err
		}
	}
	hyp, err := c.Hypothesis(ctx, created.ID)
	if err != nil {
		return err
	}
	fmt.Printf("learned: %s\n", hyp.Query)
	return c.Delete(ctx, created.ID)
}
