// An intentionally external module: it consumes querylearn the way a
// third-party crowd frontend would, importing only pkg/api and pkg/client.
// `make api-check` builds it to prove the public SDK surface compiles from
// outside the module (and the paired `go list -deps` check proves pkg/
// does not depend on internal/).
module querylearn.example/apicheck

go 1.24

require querylearn v0.0.0

replace querylearn => ../..
