// geopaths runs the paper's §3 geographic use case: a user explores a road
// network, labels a few source/destination pairs, and the interactive
// learner infers the path query (e.g. "reachable by one highway hop then
// local roads") while asking as few questions as possible. The learned
// result is finally published as XML — Figure 1's scenario 4.
//
//	go run ./examples/geopaths
package main

import (
	"fmt"
	"log"
	"math/rand"

	"querylearn/internal/exchange"
	"querylearn/internal/graph"
	"querylearn/internal/graphlearn"
)

func main() {
	g := graph.GenerateGeo(42, 60)
	fmt.Printf("road network: %d cities, %d typed edges %v\n",
		g.NumNodes(), g.NumEdges(), g.Labels())

	// The hidden intent: destinations reachable by a highway hop followed
	// by any number of local roads.
	goal := graph.MustParsePathQuery("highway.road*")
	oracle := graphlearn.GoalOracle{G: g, Goal: goal}

	// The user picks two cities they care about: a pair the goal selects
	// whose shortest route shows the intended shape.
	var seed graph.Pair
	for _, p := range g.Eval(goal) {
		w := g.ShortestWord(p.Src, p.Dst)
		if len(w) >= 3 && w[0] == "highway" {
			ok := true
			for _, l := range w[1:] {
				if l != "road" {
					ok = false
					break
				}
			}
			if ok {
				seed = p
				break
			}
		}
	}
	fmt.Printf("seed pair: %s -> %s (witness %v)\n",
		g.Node(seed.Src), g.Node(seed.Dst), g.ShortestWord(seed.Src, seed.Dst))

	pool := graphlearn.DefaultPool(g, 5, 1000)
	for _, strat := range []graphlearn.Strategy{
		graphlearn.RandomStrategy{Rng: rand.New(rand.NewSource(1))},
		graphlearn.SplitStrategy{},
		&graphlearn.PriorStrategy{G: g, Workload: []graph.PathQuery{goal},
			Fallback: graphlearn.SplitStrategy{}},
	} {
		stats, err := graphlearn.Run(g, seed, pool, oracle, strat)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("strategy %-7s: %2d questions -> learned %s\n",
			stats.Strategy, stats.Questions, stats.Learned)
	}

	// Scenario 4: publish the learned paths as XML.
	exs := []graphlearn.Example{{Src: seed.Src, Dst: seed.Dst, Positive: true}}
	res, err := exchange.Scenario4(g, exs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published %d paths as XML (root <%s>)\n",
		len(res.Document.Children), res.Document.Label)
}
