GO ?= go

.PHONY: all build test vet bench-smoke bench-json ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Quick sanity pass over the tentpole benchmarks (naive vs optimized
# evaluation core); catches gross perf/correctness regressions in seconds.
bench-smoke:
	$(GO) test -run '^$$' -bench 'NaiveVsFast' -benchtime 50ms -benchmem .

# Capture the experiment tables as a JSON perf trajectory (BENCH_*.json).
bench-json:
	$(GO) run ./cmd/benchrunner -json > BENCH_$(shell date +%Y%m%d).json

ci: build vet test bench-smoke
