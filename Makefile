GO ?= go
FUZZTIME ?= 2s

.PHONY: all build test vet test-v1 bench-smoke bench-t14 bench-recovery bench-t19 bench-json chaos-smoke fuzz-smoke loadgen-smoke cluster-smoke examples api-check ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Run the storage-touching suites with the journal pinned to format v1
# (JSON): the rollback path of -store-format must keep passing the same
# crash/torn-tail/recovery tests as the v2 default.
test-v1:
	QUERYLEARN_STORE_FORMAT=v1 $(GO) test ./internal/store ./internal/session ./internal/server

# Quick sanity pass over the tentpole benchmarks (naive vs optimized
# evaluation core); catches gross perf/correctness regressions in seconds.
bench-smoke:
	$(GO) test -run '^$$' -bench 'NaiveVsFast' -benchtime 50ms -benchmem .

# Big-graph smoke: create and converge path sessions on 20k/100k-node graphs
# over /v1 (T14) — keeps the sparse version-space path exercised end to end.
bench-t14:
	$(GO) run ./cmd/benchrunner -only T14

# Recovery-format benchmark (T17): cold-open throughput v2 vs v1 on
# identical corpora plus allocs/op on POST answers — the storage codec's
# perf gate.
bench-recovery:
	$(GO) run ./cmd/benchrunner -only T17

# Planned-evaluation benchmark (T19): the greedy planning layer against the
# PR 5 fixed-order and PR 1 naive engines on the hub-pair and high-arity
# semijoin workloads — the planner's perf gate.
bench-t19:
	$(GO) run ./cmd/benchrunner -only T19

# Capture the experiment tables as a JSON perf trajectory (BENCH_*.json).
bench-json:
	$(GO) run ./cmd/benchrunner -json > BENCH_$(shell date +%Y%m%d).json

# Chaos smoke: one kill/recover scenario per registered store injection
# point (the fault-injection chaos suite) plus the degraded-mode /v1
# contract, under the race detector — the durability invariants in
# adversarial form, in a few seconds.
chaos-smoke:
	$(GO) test -race -run 'TestChaosEveryInjectionPoint' ./internal/store
	$(GO) test -race -run 'TestDegradedModeOverV1|TestAdmissionShedsWith429' ./internal/server

# Short fuzz pass over every wire-boundary decoder: the four task parsers
# (untrusted POST /sessions bodies), the journal replay (crash-truncated
# bytes, both formats), and the v2 codec (round-trip identity and decoder
# robustness). ~15s total at the default FUZZTIME; raise it to dig deeper.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzParseTwigTask -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz FuzzParseJoinTask -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz FuzzParsePathTask -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz FuzzParseSchemaTask -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz FuzzStoreReplay -fuzztime $(FUZZTIME) ./internal/store
	$(GO) test -run '^$$' -fuzz FuzzCodecRoundTrip -fuzztime $(FUZZTIME) ./internal/codec
	$(GO) test -run '^$$' -fuzz FuzzCodecDecode -fuzztime $(FUZZTIME) ./internal/codec
	$(GO) test -run '^$$' -fuzz FuzzShipDecode -fuzztime $(FUZZTIME) ./internal/cluster
	$(GO) test -run '^$$' -fuzz FuzzPlanEquivalence -fuzztime $(FUZZTIME) ./internal/plan

# Open-loop load smoke: a short fixed-seed Poisson run against an
# in-process daemon (cmd/loadgen self-host). Fails on any request error or
# a p99 over budget — the observability layer's end-to-end gate.
loadgen-smoke:
	$(GO) run ./cmd/loadgen -smoke -p99-budget 1s

# Real-process cluster gate: three querylearnd daemons on loopback ports,
# crowd dialogues driven through a NON-owner node (307 routing + SDK route
# cache on the hot path), the owner SIGKILLed mid-dialogue, and takeover
# asserted with zero lost acknowledged answers.
cluster-smoke:
	@mkdir -p bin
	$(GO) build -o bin/querylearnd ./cmd/querylearnd
	$(GO) run ./cmd/clustersmoke -bin bin/querylearnd

# Compile-and-run every example as a smoke test; they have no test files,
# so this is the only thing keeping them honest.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/crowdjoin
	$(GO) run ./examples/geopaths
	$(GO) run ./examples/xmlshred

# Guard the public SDK surface: build the external consumer module (a
# separate go.mod importing only pkg/api + pkg/client, the way a third
# party would) and fail if pkg/ ever grows a dependency on internal/.
api-check:
	cd examples/apicheck && $(GO) build -o /dev/null .
	@leaks=$$($(GO) list -deps ./pkg/... | grep '^querylearn/internal' || true); \
	if [ -n "$$leaks" ]; then \
		echo "pkg/ must not depend on internal/ (the SDK would drag private types):"; \
		echo "$$leaks"; exit 1; \
	fi

ci: build vet test test-v1 bench-smoke bench-t14 bench-recovery bench-t19 chaos-smoke fuzz-smoke loadgen-smoke cluster-smoke examples api-check
