// Package querylearn is a Go reproduction of "Learning Queries for
// Relational, Semi-structured, and Graph Databases" (Ciucanu, SIGMOD/PODS
// 2013 PhD Symposium): learning algorithms for twig queries on XML,
// join-like queries on relations, and path queries on graphs, together with
// the unordered-XML multiplicity schemas, the interactive learning
// framework, the crowdsourcing cost model, and the four cross-model
// data-exchange pipelines of the paper's Figure 1.
//
// The public surface lives in internal/core (facade), with the
// model-specific engines in internal/twig, internal/twiglearn,
// internal/schema, internal/schemalearn, internal/relational,
// internal/rellearn, internal/graph, internal/graphlearn,
// internal/interact, internal/crowd, internal/exchange, and the benchmark
// substrate in internal/xmark and internal/experiments. See README.md for a
// tour, DESIGN.md for the system inventory, and EXPERIMENTS.md for the
// claim-by-claim reproduction record.
//
// The serving stack layers the interactive loop into a durable daemon; each
// layer only sees the one below it, and both ends of the wire share one
// protocol definition:
//
//	pkg/client           typed Go SDK over the /v1 protocol: context-aware,
//	        │            retries 503s, generates Idempotency-Keys so
//	        │            retried writes are safe (external consumers,
//	        │            the replay driver, and the experiments all use it)
//	        ▼
//	pkg/api              the v1 wire protocol: request/response bodies,
//	        │            question/answer/snapshot types, stable error
//	        │            codes — imported by both sides (internal/session
//	        ▼            aliases these types as its dialogue vocabulary)
//	cmd/querylearnd      daemon: flags, boot-time recovery, TTL sweep and
//	        │            compaction timers, hardened http.Server, final
//	        │            flush on graceful shutdown
//	        ▼
//	internal/cluster     optional multi-node layer (-cluster-node/-peers),
//	        │            wrapped around the server's handler: a consistent-
//	        │            hash ring routes each session to the node that
//	        │            minted it (307 redirects on /v1, server-side
//	        │            proxying for legacy routes, X-Querylearn-Node on
//	        │            every response); followers replicate each owner's
//	        │            journal over GET /v1/cluster/ship (raw on-disk
//	        │            frames, resumable by LSN cursor) into in-memory
//	        │            standbys — never their own journal, so fleet
//	        │            append capacity scales with node count; a
//	        │            /healthz prober fences dead peers (permanent
//	        │            latch, boot-grace for rolling starts) and
//	        │            survivors adopt the fenced node's sessions; a
//	        │            replication barrier holds each mutation's
//	        │            response until a follower's cursor covers it
//	        ▼
//	internal/server      versioned JSON HTTP API (/v1/...) over the
//	        │            sessions, with batch question dispatch, paginated
//	        │            listing, and idempotent writes; /metrics and
//	        │            /healthz surface manager counters and, when
//	        │            durable, the store's journal-lag/compaction block
//	        ▼
//	internal/session     Manager of live dialogues (sharded, per-session
//	        │            locks, budgets, TTL); every mutation is one Event
//	        │            through a single commit path, observed by an
//	        ▼            optional Journal (nil = in-memory)
//	internal/store       append-only write-ahead journal: length-prefixed
//	        │            CRC-checked records, group-commit fsync, snapshot
//	        │            compaction; recovery folds the log into
//	        ▼            session.Snapshots that Manager.Recover replays
//	internal/codec       journal record wire format v2: varint/zigzag binary
//	                     event encoding with a per-file string intern table
//	                     (dictionary records), dispatched per record by its
//	                     first byte so v1 JSON and v2 mix in one file; the
//	                     store writes the configured format (-store-format,
//	                     default v2), reads both, and upgrades v1 files to
//	                     v2 at their first compaction
//
// Observability cuts across the serving stack rather than sitting in it:
// internal/obs provides the zero-dependency metrics core (atomic
// log-bucketed latency histograms, labeled counters/gauges, a Prometheus
// text-exposition encoder and strict lint parser, per-request phase traces)
// and every serving layer records into one shared registry — the server its
// per-endpoint/per-code request histograms, the session manager its
// lock/learner/journal phases, the store its append/fsync/compaction
// timings and journal-lag gauges. GET /metrics renders the registry as both
// the legacy JSON document and ?format=prometheus exposition; the daemon
// adds pprof + runtime/metrics on -debug-addr and a sampled slow-request
// log keyed by X-Request-Id. internal/loadgen + cmd/loadgen drive the stack
// open-loop (Poisson arrivals, zipf session popularity) for the T16
// saturation curves. See README.md's "Observability".
//
// Query planning cuts across the evaluation cores the same way:
// internal/plan is the shared greedy planning layer — constant-time
// cardinality estimates read from structures the engines already hold (CSR
// degree rows, candidate popcounts, pool sizes), cheapest-first ordering
// (Pick/PickMin/Order), and a streaming Sink contract with early
// termination. graph.EvalPairs picks forward or backward product BFS per
// source group from frontier estimates (deduplicating backward runs across
// groups), rellearn's semijoin search re-ranks witness families per node by
// surviving-candidate popcount, and the graphlearn/session layers consume
// streamed verdicts so a collapsed candidate pool stops evaluation
// mid-flight. Decisions surface as querylearn_plan_* metrics and a "plan"
// request-trace phase; QUERYLEARN_NOPLAN=1 reverts every consumer to its
// fixed pre-planning order. See README.md's "Query planning".
//
// Scale: interactive path sessions run on a sparse, pool-projected version
// space — candidate membership is interned over the question pool (pool ∪
// task examples ∪ seed) and evaluated by the source-restricted
// graph.EvalPairs, so per-session memory is O(candidates × pool) bits and
// the old dense-bitset 4096-node graph cap is gone. Session limits are
// daemon flags (-path-max-nodes, default one million nodes; -path-pool-limit;
// -path-pool-max-len; -max-body-bytes for the edge-list bodies) that create
// requests may tighten per session via the "limits" field; the limits travel
// inside snapshots and journal events so resume/recovery rebuilds the exact
// version space. See README.md's "Scale limits".
//
// Legacy-route deprecation policy: the pre-v1 unversioned routes (POST
// /sessions, GET /sessions/{id}/question, ...) remain as thin aliases of
// their /v1 successors. They answer identically but set a "Deprecation:
// true" header plus a Link to the successor route, keep lax request
// decoding for old clients (no Content-Type requirement, unknown body
// fields ignored — where /v1 demands application/json and rejects unknown
// fields), and do not gain v1-only features (batch questions, session
// listing, idempotency keys; the Idempotency-Key header is ignored on
// aliases). Aliases are removed no earlier than two minor releases after v1;
// the deprecated_requests counter in GET /metrics tracks remaining legacy
// traffic.
package querylearn
