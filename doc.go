// Package querylearn is a Go reproduction of "Learning Queries for
// Relational, Semi-structured, and Graph Databases" (Ciucanu, SIGMOD/PODS
// 2013 PhD Symposium): learning algorithms for twig queries on XML,
// join-like queries on relations, and path queries on graphs, together with
// the unordered-XML multiplicity schemas, the interactive learning
// framework, the crowdsourcing cost model, and the four cross-model
// data-exchange pipelines of the paper's Figure 1.
//
// The public surface lives in internal/core (facade), with the
// model-specific engines in internal/twig, internal/twiglearn,
// internal/schema, internal/schemalearn, internal/relational,
// internal/rellearn, internal/graph, internal/graphlearn,
// internal/interact, internal/crowd, internal/exchange, and the benchmark
// substrate in internal/xmark and internal/experiments. See README.md for a
// tour, DESIGN.md for the system inventory, and EXPERIMENTS.md for the
// claim-by-claim reproduction record.
//
// The serving stack layers the interactive loop into a durable daemon; each
// layer only sees the one below it:
//
//	cmd/querylearnd      daemon: flags, boot-time recovery, TTL sweep and
//	        │            compaction timers, hardened http.Server, final
//	        │            flush on graceful shutdown
//	        ▼
//	internal/server      JSON HTTP API over the sessions; /metrics and
//	        │            /healthz surface manager counters and, when
//	        │            durable, the store's journal-lag/compaction block
//	        ▼
//	internal/session     Manager of live dialogues (sharded, per-session
//	        │            locks, budgets, TTL); every mutation is one Event
//	        │            through a single commit path, observed by an
//	        ▼            optional Journal (nil = in-memory)
//	internal/store       append-only write-ahead journal: length-prefixed
//	                     CRC-checked JSON records, group-commit fsync,
//	                     snapshot compaction; recovery folds the log into
//	                     session.Snapshots that Manager.Recover replays
package querylearn
