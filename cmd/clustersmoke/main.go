// Command clustersmoke is the end-to-end cluster gate: it spawns three real
// querylearnd processes on loopback ports, drives crowd dialogues through a
// NON-owner node (so the 307 routing and the SDK's route cache are on the
// hot path), SIGKILLs the owner mid-dialogue, and asserts a survivor takes
// the sessions over with every acknowledged answer intact.
//
// Usage:
//
//	clustersmoke -bin ./bin/querylearnd [-timeout 90s]
//
// It exits 0 on success and 1 with the daemons' stderr on any failure —
// `make cluster-smoke` wires it into CI.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"querylearn/internal/loadgen"
	"querylearn/pkg/api"
	"querylearn/pkg/client"
)

type proc struct {
	id     string
	addr   string
	base   string
	dir    string
	cmd    *exec.Cmd
	stderr bytes.Buffer
	dead   bool
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "clustersmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("clustersmoke: PASS")
}

func run() error {
	bin := flag.String("bin", "", "path to a built querylearnd binary (required)")
	timeout := flag.Duration("timeout", 90*time.Second, "overall deadline")
	flag.Parse()
	if *bin == "" {
		return fmt.Errorf("-bin is required (build one: go build -o bin/querylearnd ./cmd/querylearnd)")
	}
	deadline := time.Now().Add(*timeout)

	// Warm the binary before the timed spawn loop: the FIRST exec of a
	// freshly linked binary pages it in from disk and can take whole
	// seconds, which would skew the first daemon's boot against its
	// peers' failure detectors.
	exec.Command(*bin, "-h").Run()

	// Three loopback ports; the listen-then-close gap is an acceptable race
	// for a smoke that owns the machine it runs on.
	procs := make([]*proc, 3)
	var peerSpecs []string
	for i := range procs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		addr := ln.Addr().String()
		ln.Close()
		dir, err := os.MkdirTemp("", "clustersmoke-*")
		if err != nil {
			return err
		}
		id := fmt.Sprintf("n%d", i+1)
		procs[i] = &proc{id: id, addr: addr, base: "http://" + addr, dir: dir}
		peerSpecs = append(peerSpecs, id+"="+addr)
	}
	peers := strings.Join(peerSpecs, ",")
	defer func() {
		for _, p := range procs {
			if p.cmd != nil && p.cmd.Process != nil && !p.dead {
				p.cmd.Process.Kill()
				p.cmd.Wait()
			}
			os.RemoveAll(p.dir)
		}
	}()
	// An interrupted run must not leak three daemons bound to loopback ports.
	sigC := make(chan os.Signal, 1)
	signal.Notify(sigC, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sigC
		for _, p := range procs {
			if p.cmd != nil && p.cmd.Process != nil {
				p.cmd.Process.Kill()
			}
		}
		os.Exit(1)
	}()

	for _, p := range procs {
		p.cmd = exec.Command(*bin,
			"-addr", p.addr,
			"-data-dir", p.dir,
			"-fsync", "off",
			"-cluster-node", p.id,
			"-cluster-peers", peers,
			"-cluster-probe-interval", "100ms",
			"-cluster-fail-after", "3",
		)
		p.cmd.Stderr = &p.stderr
		p.cmd.Stdout = &p.stderr
		if err := p.cmd.Start(); err != nil {
			return fmt.Errorf("starting %s: %w", p.id, err)
		}
	}
	for _, p := range procs {
		if err := waitHealthy(p.base, deadline); err != nil {
			return fmt.Errorf("%s never became healthy: %w\n--- %s stderr ---\n%s",
				p.id, err, p.id, p.stderr.String())
		}
	}
	// Do not drive traffic until every node sees every peer alive: an
	// answer acknowledged before the mesh forms has no follower to
	// replicate to, so a kill at that instant would lose it by design.
	if err := waitMesh(procs, deadline); err != nil {
		var logs strings.Builder
		for _, p := range procs {
			fmt.Fprintf(&logs, "--- %s stderr ---\n%s\n", p.id, p.stderr.String())
		}
		return fmt.Errorf("cluster mesh never formed: %w\n%s", err, logs.String())
	}

	owner, nonOwner := procs[0], procs[1]
	fail := func(format string, args ...any) error {
		return fmt.Errorf(format+"\n--- %s stderr ---\n%s\n--- %s stderr ---\n%s",
			append(args, owner.id, owner.stderr.String(), nonOwner.id, nonOwner.stderr.String())...)
	}

	ws, err := loadgen.Builtin()
	if err != nil {
		return err
	}
	ctx, cancel := context.WithDeadline(context.Background(), deadline)
	defer cancel()

	// Sessions are minted (and therefore owned) by the node that creates
	// them; every subsequent call goes through a NON-owner so the dialogue
	// rides the 307 + route-cache path.
	sdkOwner := client.New(owner.base)
	sdkVia := client.New(nonOwner.base, client.WithRetry(4, 50*time.Millisecond))

	// Warm-up: two full dialogues end to end through the non-owner.
	for i := 0; i < 2; i++ {
		w := ws[i%len(ws)]
		created, err := sdkOwner.Create(ctx, api.CreateRequest{Model: w.Model, Task: w.Task})
		if err != nil {
			return fail("create dialogue %d: %v", i, err)
		}
		if _, err := converge(ctx, sdkVia, created.ID, w, deadline); err != nil {
			return fail("dialogue %d via non-owner: %v", i, err)
		}
		if err := sdkVia.Delete(ctx, created.ID); err != nil {
			return fail("delete dialogue %d: %v", i, err)
		}
	}

	// The takeover dialogue: answer one question, then SIGKILL the owner
	// mid-dialogue and finish it through whoever survives.
	w := ws[0]
	created, err := sdkOwner.Create(ctx, api.CreateRequest{Model: w.Model, Task: w.Task})
	if err != nil {
		return fail("create takeover dialogue: %v", err)
	}
	q, ok, err := question(ctx, sdkVia, created.ID, deadline)
	if err != nil || !ok {
		return fail("first question (ok=%v): %v", ok, err)
	}
	acked, err := answer(ctx, sdkVia, created.ID, w, q)
	if err != nil {
		return fail("first answer: %v", err)
	}

	owner.dead = true
	if err := owner.cmd.Process.Kill(); err != nil {
		return fmt.Errorf("SIGKILL %s: %v", owner.id, err)
	}
	owner.cmd.Wait()

	// Finish the dialogue through the survivors; the first calls race the
	// failure detector, so retry until the takeover lands.
	if _, err := converge(ctx, sdkVia, created.ID, w, deadline); err != nil {
		return fail("dialogue after owner kill: %v", err)
	}

	// A survivor must report the owner fenced, and the adopted session must
	// still carry every pre-kill acknowledged answer.
	if err := waitFenced(nonOwner.base, owner.id, deadline); err != nil {
		return fail("survivor never fenced %s: %v", owner.id, err)
	}
	st, err := sdkVia.Status(ctx, created.ID)
	if err != nil {
		return fail("status on survivor: %v", err)
	}
	if st.HITs < acked {
		return fail("acknowledged answers lost in takeover: HITs %d < acked %d before the kill", st.HITs, acked)
	}
	fmt.Printf("clustersmoke: owner %s killed mid-dialogue; survivors finished session %s with %d HITs (%d acked pre-kill)\n",
		owner.id, created.ID, st.HITs, acked)
	return nil
}

func waitHealthy(base string, deadline time.Time) error {
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return err
			}
			return fmt.Errorf("deadline waiting for /healthz")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// peerStates fetches one node's /healthz cluster block as peerID -> state.
func peerStates(base string) (map[string]string, error) {
	var h struct {
		Cluster *struct {
			Peers []struct {
				ID    string `json:"id"`
				State string `json:"state"`
			} `json:"peers"`
		} `json:"cluster"`
	}
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil, err
	}
	if h.Cluster == nil {
		return nil, fmt.Errorf("no cluster block in /healthz")
	}
	states := make(map[string]string, len(h.Cluster.Peers))
	for _, p := range h.Cluster.Peers {
		states[p.ID] = p.State
	}
	return states, nil
}

// waitMesh blocks until every node's failure detector has marked every
// other peer alive — the point at which an acknowledged answer is
// guaranteed to have a follower holding its replica.
func waitMesh(procs []*proc, deadline time.Time) error {
	for {
		formed := true
		var gap string
		for _, p := range procs {
			states, err := peerStates(p.base)
			if err != nil {
				formed, gap = false, fmt.Sprintf("%s: %v", p.id, err)
				break
			}
			for _, other := range procs {
				if other.id == p.id {
					continue
				}
				if states[other.id] != "alive" {
					formed, gap = false, fmt.Sprintf("%s sees %s as %q", p.id, other.id, states[other.id])
					break
				}
			}
			if !formed {
				break
			}
		}
		if formed {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("deadline: %s", gap)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// waitFenced polls a survivor's /healthz until the killed peer shows as
// fenced in the cluster block.
func waitFenced(base, peerID string, deadline time.Time) error {
	for {
		states, err := peerStates(base)
		if err == nil && states[peerID] == "fenced" {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("deadline waiting for %s to be fenced", peerID)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// question fetches the next informative item, retrying through the SDK while
// the cluster reroutes around a dead owner. ok=false means converged.
func question(ctx context.Context, sdk *client.Client, id string, deadline time.Time) (api.Question, bool, error) {
	for {
		q, ok, err := sdk.Question(ctx, id)
		if err == nil {
			return q, ok, nil
		}
		if time.Now().After(deadline) {
			return api.Question{}, false, err
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// answer labels one item with the workload's oracle in ONE logical SDK call
// (the SDK holds one Idempotency-Key across its internal retries) and
// returns the cumulative HITs the server acknowledged.
func answer(ctx context.Context, sdk *client.Client, id string, w loadgen.Workload, q api.Question) (int, error) {
	pos, err := w.Oracle(q.Item)
	if err != nil {
		return 0, err
	}
	res, err := sdk.Answers(ctx, id, []api.Answer{{Item: q.Item, Positive: pos}}, api.ReconcileNone)
	return res.HITs, err
}

// converge drives the dialogue until the model has no more questions,
// returning the last acknowledged cumulative HIT count. A failed answer is
// NOT blindly re-posted: the loop re-fetches the question, so an answer
// that landed but lost its response is never labeled twice.
func converge(ctx context.Context, sdk *client.Client, id string, w loadgen.Workload, deadline time.Time) (int, error) {
	hits := 0
	for step := 0; step < 400; step++ {
		q, ok, err := question(ctx, sdk, id, deadline)
		if err != nil {
			return hits, err
		}
		if !ok {
			return hits, nil
		}
		h, err := answer(ctx, sdk, id, w, q)
		if err != nil {
			if time.Now().After(deadline) {
				return hits, err
			}
			time.Sleep(100 * time.Millisecond)
			continue
		}
		hits = h
	}
	return hits, fmt.Errorf("dialogue %s did not converge in 400 steps", id)
}
