// Command benchrunner regenerates every experiment table of the
// reproduction (see DESIGN.md's per-experiment index and EXPERIMENTS.md for
// the recorded results).
//
// Usage:
//
//	benchrunner [-scale N] [-only T4,T7]
//
// Scale 1 (default) finishes in seconds; larger scales sweep bigger
// instances.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"querylearn/internal/experiments"
)

func main() {
	scale := flag.Int("scale", 1, "experiment scale factor (1 = quick)")
	only := flag.String("only", "", "comma-separated experiment ids to run (e.g. T4,T7); empty = all")
	flag.Parse()

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		id = strings.TrimSpace(strings.ToUpper(id))
		if id != "" {
			want[id] = true
		}
	}
	ran := 0
	for _, t := range experiments.All(*scale) {
		if len(want) > 0 && !want[t.ID] {
			continue
		}
		fmt.Println(t.Render())
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "benchrunner: no experiments matched -only filter")
		os.Exit(1)
	}
}
