// Command benchrunner regenerates every experiment table of the
// reproduction (see DESIGN.md's per-experiment index and EXPERIMENTS.md for
// the recorded results).
//
// Usage:
//
//	benchrunner [-scale N] [-only T4,T7] [-json]
//
// Scale 1 (default) finishes in seconds; larger scales sweep bigger
// instances. With -json the tables are emitted as one JSON document
// (schema below) so per-PR perf trajectories can be captured as
// BENCH_*.json files:
//
//	benchrunner -json > BENCH_PR1.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"querylearn/internal/experiments"
)

// benchDoc is the -json output schema.
type benchDoc struct {
	SchemaVersion int                  `json:"schema_version"`
	Scale         int                  `json:"scale"`
	GoOS          string               `json:"goos"`
	GoArch        string               `json:"goarch"`
	NumCPU        int                  `json:"num_cpu"`
	Tables        []*experiments.Table `json:"tables"`
}

func main() {
	scale := flag.Int("scale", 1, "experiment scale factor (1 = quick)")
	only := flag.String("only", "", "comma-separated experiment ids to run (e.g. T4,T7); empty = all")
	asJSON := flag.Bool("json", false, "emit tables as one JSON document instead of text")
	flag.Parse()

	// Resolve the -only filter against the registry BEFORE running anything,
	// so a single-experiment smoke run does not pay for the whole suite.
	var ids []string
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			ids = append(ids, id)
		}
	}
	kept := experiments.Only(ids, *scale)
	if len(kept) == 0 {
		fmt.Fprintln(os.Stderr, "benchrunner: no experiments matched -only filter")
		os.Exit(1)
	}
	if *asJSON {
		doc := benchDoc{
			SchemaVersion: 1,
			Scale:         *scale,
			GoOS:          runtime.GOOS,
			GoArch:        runtime.GOARCH,
			NumCPU:        runtime.NumCPU(),
			Tables:        kept,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
			os.Exit(1)
		}
		return
	}
	for _, t := range kept {
		fmt.Println(t.Render())
	}
}
