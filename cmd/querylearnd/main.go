// Command querylearnd serves interactive query-learning sessions over HTTP —
// the daemon form of the paper's question/answer loop, hosting many
// concurrent dialogues with TTL eviction and crowd-budget accounting.
//
// Usage:
//
//	querylearnd [flags]                      serve the JSON API
//	querylearnd [flags] replay <model> <task-file>
//
// Serve mode binds -addr and exposes the endpoints documented in
// internal/server. With -data-dir every session mutation is journaled
// write-ahead through internal/store and the daemon recovers all live
// dialogues on restart; -fsync picks the durability mode and -compact-every
// the journal rewrite period (see the README's Durability section). Replay
// mode is the end-to-end driver: it learns the goal query from the full task
// in-process (the batch learner plays the user, the paper's simulation
// protocol), strips the task down to its seed, then re-learns it
// interactively over HTTP against an in-process server, printing the full
// dialogue — the T8-style interactive runs, over the wire.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime/metrics"
	"strings"
	"syscall"
	"time"

	"querylearn/internal/cluster"
	"querylearn/internal/fault"
	"querylearn/internal/loadgen"
	"querylearn/internal/obs"
	"querylearn/internal/server"
	"querylearn/internal/session"
	"querylearn/internal/store"
	"querylearn/pkg/api"
	"querylearn/pkg/client"
)

// hardenServer applies the slowloris and slow-drain guards every listener
// gets: a bare http.Server trusts clients to send headers and bodies
// promptly, and a few hundred idling connections would otherwise pin the
// daemon's file descriptors forever.
func hardenServer(srv *http.Server) *http.Server {
	srv.ReadHeaderTimeout = 5 * time.Second
	srv.ReadTimeout = 30 * time.Second
	srv.WriteTimeout = 60 * time.Second
	srv.IdleTimeout = 2 * time.Minute
	return srv
}

// storeConfig is the durability flag block.
type storeConfig struct {
	dataDir      string
	fsync        string
	format       string
	compactEvery time.Duration
	// faults is the -fault-spec registry (nil in production runs); the
	// store registers its injection points here on open.
	faults *fault.Registry
	// obs is the daemon's shared metrics registry; the store contributes
	// its journal/fsync/compaction instruments to the same /metrics scrape.
	obs *obs.Registry
}

// robustConfig is the overload/chaos flag block.
type robustConfig struct {
	faultSpec   string
	maxInflight int
}

// obsConfig is the observability flag block.
type obsConfig struct {
	debugAddr     string
	slowThreshold time.Duration
	slowEvery     int
}

// clusterConfig is the -cluster-* flag block. Both node and peers must be
// set to enable clustering, and clustering requires a journal (-data-dir):
// the journal is the thing peers ship.
type clusterConfig struct {
	node          string
	peers         string
	probeInterval time.Duration
	failAfter     int
	ackTimeout    time.Duration
	secret        string
}

func (cc clusterConfig) enabled() bool { return cc.node != "" || cc.peers != "" }

// openManager builds the session manager, and — when a data directory is
// configured — opens the journal under it, recovers every surviving session
// through the Resume machinery, and wires the store in as the manager's
// journal. The returned store is nil when running in-memory.
// The optional prep hook runs between store open and manager construction —
// the cluster layer uses it to install its ring-aware id minter, which needs
// the store but must exist before the manager does.
func openManager(cfg session.Config, sc storeConfig, prep func(*store.Store, *session.Config) error) (*session.Manager, *store.Store, error) {
	if sc.dataDir == "" {
		return session.NewManager(cfg), nil, nil
	}
	st, snaps, err := store.Open(sc.dataDir, store.Options{Fsync: sc.fsync, Format: sc.format, Faults: sc.faults, Obs: sc.obs})
	if err != nil {
		return nil, nil, err
	}
	cfg.Journal = st
	if prep != nil {
		if err := prep(st, &cfg); err != nil {
			st.Close()
			return nil, nil, err
		}
	}
	mgr := session.NewManager(cfg)
	n, recErr := mgr.Recover(snaps)
	if recErr != nil {
		fmt.Fprintf(os.Stderr, "querylearnd: recovery skipped sessions: %v\n", recErr)
	}
	rs := st.Stats().Recovered
	fmt.Fprintf(os.Stderr, "querylearnd: recovered %d of %d journaled sessions from %s (%d events)\n",
		n, rs.Sessions, sc.dataDir, rs.Events)
	if rs.TornTail != "" {
		fmt.Fprintf(os.Stderr, "querylearnd: journal had a torn tail (%d bytes dropped): %s\n",
			rs.DroppedBytes, rs.TornTail)
	}
	return mgr, st, nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "querylearnd:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("querylearnd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	ttl := fs.Duration("ttl", 30*time.Minute, "evict sessions idle longer than this (0 = never)")
	maxSessions := fs.Int("max-sessions", 10000, "cap on live sessions (0 = unlimited)")
	shards := fs.Int("shards", 16, "lock shards in the session manager")
	costPerHIT := fs.Float64("cost-per-hit", 0, "dollar cost per submitted label")
	pathMaxNodes := fs.Int("path-max-nodes", session.DefaultPathMaxNodes, "cap on a path task's graph size in nodes (requests may tighten, never exceed)")
	pathPoolLimit := fs.Int("path-pool-limit", session.DefaultPathPoolLimit, "cap on a path session's question-pool pairs")
	pathPoolMaxLen := fs.Int("path-pool-max-len", session.DefaultPathPoolMaxLen, "cap on pool pairs' shortest-path length in hops")
	maxBody := fs.Int64("max-body-bytes", 64<<20, "request body size cap; big-graph tasks are one edge line per edge")
	sweep := fs.Duration("sweep-interval", time.Minute, "TTL sweep period")
	dataDir := fs.String("data-dir", "", "journal live sessions under this directory and recover them on restart (empty = in-memory only)")
	fsync := fs.String("fsync", store.FsyncBatched, "journal durability: off (OS decides), batched (background group commit), always (fsync per mutation)")
	storeFormat := fs.String("store-format", "", "journal record format for new writes: v2 (binary, the default) or v1 (JSON, rollback); either format is always readable")
	compactEvery := fs.Duration("compact-every", 5*time.Minute, "rewrite the journal as snapshots this often (0 = only at boot)")
	maxInflight := fs.Int("max-inflight", 64, "per-shard in-flight request budget; excess requests are shed with 429 overloaded (0 = unlimited)")
	faultSpec := fs.String("fault-spec", "", `DEV ONLY: arm deterministic fault injection, e.g. "store.append=error:times=3,server.request=latency:delay=50ms" (see internal/fault)`)
	debugAddr := fs.String("debug-addr", "", "serve pprof and runtime/metrics on this address (empty = off; bind loopback, the listener is unauthenticated)")
	slowThreshold := fs.Duration("slow-log-threshold", 500*time.Millisecond, "log requests slower than this with their phase breakdown (0 = off)")
	slowEvery := fs.Int("slow-log-every", 1, "sample 1 in N slow requests for the structured log")
	clusterNode := fs.String("cluster-node", "", "this node's id in -cluster-peers; enables cluster mode (requires -data-dir)")
	clusterPeers := fs.String("cluster-peers", "", `static cluster membership as "id=host:port,..." including this node`)
	clusterProbe := fs.Duration("cluster-probe-interval", 500*time.Millisecond, "peer /healthz probe cadence")
	clusterFailAfter := fs.Int("cluster-fail-after", 3, "consecutive probe failures before a peer is fenced and taken over")
	clusterAck := fs.Duration("cluster-ack-timeout", 2*time.Second, "replication barrier: how long a mutation's response may wait for followers")
	clusterSecret := fs.String("cluster-secret", "", "shared secret required on /v1/cluster/ship; set the same value on every node (empty = no check)")
	batch := fs.Int("batch", 1, "replay mode: questions fetched and answered per round-trip (parallel crowd dispatch)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := session.Config{
		Shards:      *shards,
		MaxSessions: *maxSessions,
		TTL:         *ttl,
		CostPerHIT:  *costPerHIT,
		Limits: session.Limits{
			PathMaxNodes:   *pathMaxNodes,
			PathPoolLimit:  *pathPoolLimit,
			PathPoolMaxLen: *pathPoolMaxLen,
		},
	}
	sc := storeConfig{dataDir: *dataDir, fsync: *fsync, format: *storeFormat, compactEvery: *compactEvery}
	if *maxBody <= 0 {
		return fmt.Errorf("-max-body-bytes must be positive (got %d)", *maxBody)
	}
	cc := clusterConfig{
		node: *clusterNode, peers: *clusterPeers,
		probeInterval: *clusterProbe, failAfter: *clusterFailAfter, ackTimeout: *clusterAck,
		secret: *clusterSecret,
	}
	if cc.enabled() {
		if cc.node == "" || cc.peers == "" {
			return fmt.Errorf("cluster mode needs both -cluster-node and -cluster-peers")
		}
		if sc.dataDir == "" {
			return fmt.Errorf("cluster mode needs -data-dir: peers replicate the journal")
		}
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return serve(*addr, cfg, *sweep, sc,
			robustConfig{faultSpec: *faultSpec, maxInflight: *maxInflight},
			obsConfig{debugAddr: *debugAddr, slowThreshold: *slowThreshold, slowEvery: *slowEvery},
			cc, *maxBody)
	}
	if rest[0] == "replay" && len(rest) == 3 {
		data, err := os.ReadFile(rest[2])
		if err != nil {
			return err
		}
		return replay(rest[1], string(data), cfg, *batch, *maxBody, out)
	}
	return fmt.Errorf("usage: querylearnd [flags] [replay {twig|join|path|schema} <task-file>]")
}

// serve runs the daemon until SIGINT/SIGTERM, sweeping expired sessions and
// compacting the journal in the background.
func serve(addr string, cfg session.Config, sweepEvery time.Duration, sc storeConfig, rc robustConfig, oc obsConfig, cc clusterConfig, maxBody int64) error {
	var reg *fault.Registry
	if rc.faultSpec != "" {
		reg = fault.NewRegistry()
		sc.faults = reg
	}
	// One registry for the whole process: the store's journal instruments
	// and the server's request instruments land in the same scrape.
	obsReg := obs.NewRegistry()
	sc.obs = obsReg
	var clu *cluster.Cluster
	var prep func(*store.Store, *session.Config) error
	if cc.enabled() {
		peers, err := cluster.ParsePeers(cc.peers)
		if err != nil {
			return err
		}
		prep = func(st *store.Store, cfg *session.Config) error {
			c, err := cluster.New(cluster.Config{
				NodeID:        cc.node,
				Peers:         peers,
				Store:         st,
				ProbeInterval: cc.probeInterval,
				FailAfter:     cc.failAfter,
				AckTimeout:    cc.ackTimeout,
				MaxBodyBytes:  maxBody,
				Secret:        cc.secret,
				Obs:           obsReg,
				Logger:        slog.New(slog.NewJSONHandler(os.Stderr, nil)),
			})
			if err != nil {
				return err
			}
			clu = c
			// Mint only ids this node owns on the ring, so creates never
			// bounce through a redirect.
			cfg.NewID = c.MintSessionID
			return nil
		}
	}
	mgr, st, err := openManager(cfg, sc, prep)
	if err != nil {
		return err
	}
	opts := []server.Option{server.WithMaxBodyBytes(maxBody), server.WithObs(obsReg)}
	if st != nil {
		opts = append(opts, server.WithStore(st.Stats))
	}
	if clu != nil {
		opts = append(opts, server.WithCluster(clu.Stats))
	}
	if rc.maxInflight > 0 {
		opts = append(opts, server.WithAdmission(rc.maxInflight, cfg.Shards))
	}
	if reg != nil {
		opts = append(opts, server.WithFaults(reg))
	}
	if oc.slowThreshold > 0 {
		opts = append(opts, server.WithSlowRequestLog(
			slog.New(slog.NewJSONHandler(os.Stderr, nil)), oc.slowThreshold, oc.slowEvery))
	}
	qsrv := server.New(mgr, opts...)
	handler := http.Handler(qsrv.Handler())
	if clu != nil {
		// The router must be the outermost layer: ownership redirects fire
		// before any local side effect, and ship requests never reach the
		// API mux.
		handler = clu.Router(handler)
		clu.Start(mgr)
	}
	srv := hardenServer(&http.Server{Addr: addr, Handler: handler})
	if reg != nil {
		// Arm after both the store and the server registered their points,
		// so a typo in the spec is caught here instead of silently ignored.
		if err := reg.ArmSpec(rc.faultSpec); err != nil {
			if st != nil {
				st.Close()
			}
			return err
		}
		fmt.Fprintf(os.Stderr, "querylearnd: FAULT INJECTION ARMED (dev only): %s\n", rc.faultSpec)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if oc.debugAddr != "" {
		if !isLoopback(oc.debugAddr) {
			fmt.Fprintf(os.Stderr, "querylearnd: WARNING: -debug-addr %s is not loopback; pprof is unauthenticated and leaks heap contents\n", oc.debugAddr)
		}
		dbg := hardenServer(&http.Server{Addr: oc.debugAddr, Handler: debugHandler()})
		// Profile captures run longer than the serving timeouts allow.
		dbg.ReadTimeout, dbg.WriteTimeout = 0, 0
		go func() {
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "querylearnd: debug listener: %v\n", err)
			}
		}()
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "querylearnd: debug listener (pprof, runtime metrics) on %s\n", oc.debugAddr)
	}

	if st != nil {
		// Background journal probe: while the store is degraded, retry a
		// healing compaction with exponential backoff (1s doubling to 30s).
		mgr.StartJournalProbe(ctx, time.Second, 30*time.Second)
	}

	if cfg.TTL > 0 && sweepEvery > 0 {
		go func() {
			t := time.NewTicker(sweepEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if n := mgr.SweepExpired(); n > 0 {
						fmt.Fprintf(os.Stderr, "querylearnd: evicted %d expired sessions\n", n)
					}
				}
			}
		}()
	}
	if st != nil && sc.compactEvery > 0 {
		go func() {
			t := time.NewTicker(sc.compactEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					// A tick can race the shutdown path's final
					// compact+close; ErrClosed there is not a fault.
					if _, err := mgr.Compact(); err != nil && !errors.Is(err, store.ErrClosed) {
						fmt.Fprintf(os.Stderr, "querylearnd: compaction failed: %v\n", err)
					}
				}
			}
		}()
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	durability := "in-memory"
	if st != nil {
		durability = fmt.Sprintf("journal %s fsync=%s compact-every=%s", sc.dataDir, sc.fsync, sc.compactEvery)
	}
	fmt.Fprintf(os.Stderr, "querylearnd: serving on %s (ttl %s, max %d sessions, %d shards, %s)\n",
		addr, cfg.TTL, cfg.MaxSessions, cfg.Shards, durability)
	if clu != nil {
		fmt.Fprintf(os.Stderr, "querylearnd: cluster node %s of [%s]\n", cc.node, cc.peers)
	}
	select {
	case err := <-errc:
		if clu != nil {
			clu.Stop()
		}
		if st != nil {
			st.Close()
		}
		return err
	case <-ctx.Done():
	}
	// Stop accepting new sessions first: in-flight dialogues finish under
	// Shutdown's grace period while creates/resumes bounce with Retry-After.
	qsrv.Drain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err = srv.Shutdown(shutdownCtx)
	if clu != nil {
		// Stop shipping and probing before the final compact rewrites the
		// journal out from under parked tail readers.
		clu.Stop()
	}
	if st != nil {
		// Final flush: compact so the next boot replays one snapshot per
		// session, then fsync whatever the shutdown raced.
		if _, cerr := mgr.Compact(); cerr != nil {
			fmt.Fprintf(os.Stderr, "querylearnd: shutdown compaction failed: %v\n", cerr)
		}
		if cerr := st.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// isLoopback reports whether a listen address is bound to localhost.
func isLoopback(addr string) bool {
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		host = addr
	}
	if host == "localhost" {
		return true
	}
	ip := net.ParseIP(host)
	return ip != nil && ip.IsLoopback()
}

// debugHandler serves pprof and a runtime/metrics dump on an explicit mux —
// the net/http/pprof side effects on DefaultServeMux never reach the API
// listener, which stays free of debug surfaces.
func debugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/runtime", func(w http.ResponseWriter, _ *http.Request) {
		descs := metrics.All()
		samples := make([]metrics.Sample, len(descs))
		for i, d := range descs {
			samples[i].Name = d.Name
		}
		metrics.Read(samples)
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, s := range samples {
			switch s.Value.Kind() {
			case metrics.KindUint64:
				fmt.Fprintf(w, "%s %d\n", s.Name, s.Value.Uint64())
			case metrics.KindFloat64:
				fmt.Fprintf(w, "%s %g\n", s.Name, s.Value.Float64())
			}
		}
	})
	return mux
}

// replay drives one full interactive run over HTTP via the pkg/client SDK.
// It returns an error if the dialogue fails; the learned hypothesis and
// transcript go to out. With batch > 1 each round fetches up to that many
// questions at once and answers them as one batch — the paper's parallel
// crowd dispatch.
func replay(model, taskSrc string, cfg session.Config, batch int, maxBody int64, out io.Writer) error {
	seedTask, oracle, goal, err := loadgen.PrepareOracle(model, taskSrc)
	if err != nil {
		return err
	}
	if batch < 1 || batch > api.MaxQuestionBatch {
		return fmt.Errorf("-batch must be in [1, %d]", api.MaxQuestionBatch)
	}

	mgr := session.NewManager(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	// The in-process server honors -max-body-bytes like serve mode: a
	// big-graph task file is a big create body.
	srv := hardenServer(&http.Server{Handler: server.New(mgr, server.WithMaxBodyBytes(maxBody)).Handler()})
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Fprintf(out, "replaying %s task against %s (batch %d)\n", model, base, batch)
	fmt.Fprintf(out, "goal (batch-learned in-process): %s\n", indentLines(goal))

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	c := client.New(base, client.WithHTTPClient(&http.Client{Timeout: 30 * time.Second}))
	created, err := c.Create(ctx, api.CreateRequest{Model: model, Task: seedTask})
	if err != nil {
		return fmt.Errorf("create: %w", err)
	}
	questions := 0
	for {
		qs, err := c.Questions(ctx, created.ID, batch)
		if err != nil {
			return fmt.Errorf("questions: %w", err)
		}
		if len(qs) == 0 {
			break
		}
		answers := make([]api.Answer, 0, len(qs))
		for _, q := range qs {
			ans, err := oracle(q.Item)
			if err != nil {
				return err
			}
			questions++
			verdict := "no"
			if ans {
				verdict = "yes"
			}
			fmt.Fprintf(out, "Q%d (%d open) %s -> %s\n", questions, q.Remaining, q.Prompt, verdict)
			answers = append(answers, api.Answer{Item: q.Item, Positive: ans})
		}
		if _, err := c.Answers(ctx, created.ID, answers, api.ReconcileNone); err != nil {
			return fmt.Errorf("answers: %w", err)
		}
	}
	hyp, err := c.Hypothesis(ctx, created.ID)
	if err != nil {
		return fmt.Errorf("query: %w", err)
	}
	fmt.Fprintf(out, "converged after %d questions\n", questions)
	fmt.Fprintf(out, "learned over HTTP: %s\n", indentLines(hyp.Query))
	return nil
}

// indentLines keeps multi-line hypotheses (schemas) readable in the
// transcript.
func indentLines(s string) string {
	s = strings.TrimSpace(s)
	if !strings.Contains(s, "\n") {
		return s
	}
	return "\n  " + strings.ReplaceAll(s, "\n", "\n  ")
}
