// Command querylearnd serves interactive query-learning sessions over HTTP —
// the daemon form of the paper's question/answer loop, hosting many
// concurrent dialogues with TTL eviction and crowd-budget accounting.
//
// Usage:
//
//	querylearnd [flags]                      serve the JSON API
//	querylearnd [flags] replay <model> <task-file>
//
// Serve mode binds -addr and exposes the endpoints documented in
// internal/server. With -data-dir every session mutation is journaled
// write-ahead through internal/store and the daemon recovers all live
// dialogues on restart; -fsync picks the durability mode and -compact-every
// the journal rewrite period (see the README's Durability section). Replay
// mode is the end-to-end driver: it learns the goal query from the full task
// in-process (the batch learner plays the user, the paper's simulation
// protocol), strips the task down to its seed, then re-learns it
// interactively over HTTP against an in-process server, printing the full
// dialogue — the T8-style interactive runs, over the wire.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"querylearn/internal/core"
	"querylearn/internal/fault"
	"querylearn/internal/rellearn"
	"querylearn/internal/server"
	"querylearn/internal/session"
	"querylearn/internal/store"
	"querylearn/internal/xmltree"
	"querylearn/pkg/api"
	"querylearn/pkg/client"
)

// hardenServer applies the slowloris and slow-drain guards every listener
// gets: a bare http.Server trusts clients to send headers and bodies
// promptly, and a few hundred idling connections would otherwise pin the
// daemon's file descriptors forever.
func hardenServer(srv *http.Server) *http.Server {
	srv.ReadHeaderTimeout = 5 * time.Second
	srv.ReadTimeout = 30 * time.Second
	srv.WriteTimeout = 60 * time.Second
	srv.IdleTimeout = 2 * time.Minute
	return srv
}

// storeConfig is the durability flag block.
type storeConfig struct {
	dataDir      string
	fsync        string
	compactEvery time.Duration
	// faults is the -fault-spec registry (nil in production runs); the
	// store registers its injection points here on open.
	faults *fault.Registry
}

// robustConfig is the overload/chaos flag block.
type robustConfig struct {
	faultSpec   string
	maxInflight int
}

// openManager builds the session manager, and — when a data directory is
// configured — opens the journal under it, recovers every surviving session
// through the Resume machinery, and wires the store in as the manager's
// journal. The returned store is nil when running in-memory.
func openManager(cfg session.Config, sc storeConfig) (*session.Manager, *store.Store, error) {
	if sc.dataDir == "" {
		return session.NewManager(cfg), nil, nil
	}
	st, snaps, err := store.Open(sc.dataDir, store.Options{Fsync: sc.fsync, Faults: sc.faults})
	if err != nil {
		return nil, nil, err
	}
	cfg.Journal = st
	mgr := session.NewManager(cfg)
	n, recErr := mgr.Recover(snaps)
	if recErr != nil {
		fmt.Fprintf(os.Stderr, "querylearnd: recovery skipped sessions: %v\n", recErr)
	}
	rs := st.Stats().Recovered
	fmt.Fprintf(os.Stderr, "querylearnd: recovered %d of %d journaled sessions from %s (%d events)\n",
		n, rs.Sessions, sc.dataDir, rs.Events)
	if rs.TornTail != "" {
		fmt.Fprintf(os.Stderr, "querylearnd: journal had a torn tail (%d bytes dropped): %s\n",
			rs.DroppedBytes, rs.TornTail)
	}
	return mgr, st, nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "querylearnd:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("querylearnd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	ttl := fs.Duration("ttl", 30*time.Minute, "evict sessions idle longer than this (0 = never)")
	maxSessions := fs.Int("max-sessions", 10000, "cap on live sessions (0 = unlimited)")
	shards := fs.Int("shards", 16, "lock shards in the session manager")
	costPerHIT := fs.Float64("cost-per-hit", 0, "dollar cost per submitted label")
	pathMaxNodes := fs.Int("path-max-nodes", session.DefaultPathMaxNodes, "cap on a path task's graph size in nodes (requests may tighten, never exceed)")
	pathPoolLimit := fs.Int("path-pool-limit", session.DefaultPathPoolLimit, "cap on a path session's question-pool pairs")
	pathPoolMaxLen := fs.Int("path-pool-max-len", session.DefaultPathPoolMaxLen, "cap on pool pairs' shortest-path length in hops")
	maxBody := fs.Int64("max-body-bytes", 64<<20, "request body size cap; big-graph tasks are one edge line per edge")
	sweep := fs.Duration("sweep-interval", time.Minute, "TTL sweep period")
	dataDir := fs.String("data-dir", "", "journal live sessions under this directory and recover them on restart (empty = in-memory only)")
	fsync := fs.String("fsync", store.FsyncBatched, "journal durability: off (OS decides), batched (background group commit), always (fsync per mutation)")
	compactEvery := fs.Duration("compact-every", 5*time.Minute, "rewrite the journal as snapshots this often (0 = only at boot)")
	maxInflight := fs.Int("max-inflight", 64, "per-shard in-flight request budget; excess requests are shed with 429 overloaded (0 = unlimited)")
	faultSpec := fs.String("fault-spec", "", `DEV ONLY: arm deterministic fault injection, e.g. "store.append=error:times=3,server.request=latency:delay=50ms" (see internal/fault)`)
	batch := fs.Int("batch", 1, "replay mode: questions fetched and answered per round-trip (parallel crowd dispatch)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := session.Config{
		Shards:      *shards,
		MaxSessions: *maxSessions,
		TTL:         *ttl,
		CostPerHIT:  *costPerHIT,
		Limits: session.Limits{
			PathMaxNodes:   *pathMaxNodes,
			PathPoolLimit:  *pathPoolLimit,
			PathPoolMaxLen: *pathPoolMaxLen,
		},
	}
	sc := storeConfig{dataDir: *dataDir, fsync: *fsync, compactEvery: *compactEvery}
	if *maxBody <= 0 {
		return fmt.Errorf("-max-body-bytes must be positive (got %d)", *maxBody)
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return serve(*addr, cfg, *sweep, sc, robustConfig{faultSpec: *faultSpec, maxInflight: *maxInflight}, *maxBody)
	}
	if rest[0] == "replay" && len(rest) == 3 {
		data, err := os.ReadFile(rest[2])
		if err != nil {
			return err
		}
		return replay(rest[1], string(data), cfg, *batch, *maxBody, out)
	}
	return fmt.Errorf("usage: querylearnd [flags] [replay {twig|join|path|schema} <task-file>]")
}

// serve runs the daemon until SIGINT/SIGTERM, sweeping expired sessions and
// compacting the journal in the background.
func serve(addr string, cfg session.Config, sweepEvery time.Duration, sc storeConfig, rc robustConfig, maxBody int64) error {
	var reg *fault.Registry
	if rc.faultSpec != "" {
		reg = fault.NewRegistry()
		sc.faults = reg
	}
	mgr, st, err := openManager(cfg, sc)
	if err != nil {
		return err
	}
	opts := []server.Option{server.WithMaxBodyBytes(maxBody)}
	if st != nil {
		opts = append(opts, server.WithStore(st.Stats))
	}
	if rc.maxInflight > 0 {
		opts = append(opts, server.WithAdmission(rc.maxInflight, cfg.Shards))
	}
	if reg != nil {
		opts = append(opts, server.WithFaults(reg))
	}
	qsrv := server.New(mgr, opts...)
	srv := hardenServer(&http.Server{Addr: addr, Handler: qsrv.Handler()})
	if reg != nil {
		// Arm after both the store and the server registered their points,
		// so a typo in the spec is caught here instead of silently ignored.
		if err := reg.ArmSpec(rc.faultSpec); err != nil {
			if st != nil {
				st.Close()
			}
			return err
		}
		fmt.Fprintf(os.Stderr, "querylearnd: FAULT INJECTION ARMED (dev only): %s\n", rc.faultSpec)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if st != nil {
		// Background journal probe: while the store is degraded, retry a
		// healing compaction with exponential backoff (1s doubling to 30s).
		mgr.StartJournalProbe(ctx, time.Second, 30*time.Second)
	}

	if cfg.TTL > 0 && sweepEvery > 0 {
		go func() {
			t := time.NewTicker(sweepEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if n := mgr.SweepExpired(); n > 0 {
						fmt.Fprintf(os.Stderr, "querylearnd: evicted %d expired sessions\n", n)
					}
				}
			}
		}()
	}
	if st != nil && sc.compactEvery > 0 {
		go func() {
			t := time.NewTicker(sc.compactEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					// A tick can race the shutdown path's final
					// compact+close; ErrClosed there is not a fault.
					if _, err := mgr.Compact(); err != nil && !errors.Is(err, store.ErrClosed) {
						fmt.Fprintf(os.Stderr, "querylearnd: compaction failed: %v\n", err)
					}
				}
			}
		}()
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	durability := "in-memory"
	if st != nil {
		durability = fmt.Sprintf("journal %s fsync=%s compact-every=%s", sc.dataDir, sc.fsync, sc.compactEvery)
	}
	fmt.Fprintf(os.Stderr, "querylearnd: serving on %s (ttl %s, max %d sessions, %d shards, %s)\n",
		addr, cfg.TTL, cfg.MaxSessions, cfg.Shards, durability)
	select {
	case err := <-errc:
		if st != nil {
			st.Close()
		}
		return err
	case <-ctx.Done():
	}
	// Stop accepting new sessions first: in-flight dialogues finish under
	// Shutdown's grace period while creates/resumes bounce with Retry-After.
	qsrv.Drain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err = srv.Shutdown(shutdownCtx)
	if st != nil {
		// Final flush: compact so the next boot replays one snapshot per
		// session, then fsync whatever the shutdown raced.
		if _, cerr := mgr.Compact(); cerr != nil {
			fmt.Fprintf(os.Stderr, "querylearnd: shutdown compaction failed: %v\n", cerr)
		}
		if cerr := st.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// oracleFunc answers a question item; the batch-learned goal plays the user.
type oracleFunc func(item json.RawMessage) (bool, error)

// replay drives one full interactive run over HTTP via the pkg/client SDK.
// It returns an error if the dialogue fails; the learned hypothesis and
// transcript go to out. With batch > 1 each round fetches up to that many
// questions at once and answers them as one batch — the paper's parallel
// crowd dispatch.
func replay(model, taskSrc string, cfg session.Config, batch int, maxBody int64, out io.Writer) error {
	seedTask, oracle, goal, err := prepareReplay(model, taskSrc)
	if err != nil {
		return err
	}
	if batch < 1 || batch > api.MaxQuestionBatch {
		return fmt.Errorf("-batch must be in [1, %d]", api.MaxQuestionBatch)
	}

	mgr := session.NewManager(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	// The in-process server honors -max-body-bytes like serve mode: a
	// big-graph task file is a big create body.
	srv := hardenServer(&http.Server{Handler: server.New(mgr, server.WithMaxBodyBytes(maxBody)).Handler()})
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Fprintf(out, "replaying %s task against %s (batch %d)\n", model, base, batch)
	fmt.Fprintf(out, "goal (batch-learned in-process): %s\n", indentLines(goal))

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	c := client.New(base, client.WithHTTPClient(&http.Client{Timeout: 30 * time.Second}))
	created, err := c.Create(ctx, api.CreateRequest{Model: model, Task: seedTask})
	if err != nil {
		return fmt.Errorf("create: %w", err)
	}
	questions := 0
	for {
		qs, err := c.Questions(ctx, created.ID, batch)
		if err != nil {
			return fmt.Errorf("questions: %w", err)
		}
		if len(qs) == 0 {
			break
		}
		answers := make([]api.Answer, 0, len(qs))
		for _, q := range qs {
			ans, err := oracle(q.Item)
			if err != nil {
				return err
			}
			questions++
			verdict := "no"
			if ans {
				verdict = "yes"
			}
			fmt.Fprintf(out, "Q%d (%d open) %s -> %s\n", questions, q.Remaining, q.Prompt, verdict)
			answers = append(answers, api.Answer{Item: q.Item, Positive: ans})
		}
		if _, err := c.Answers(ctx, created.ID, answers, api.ReconcileNone); err != nil {
			return fmt.Errorf("answers: %w", err)
		}
	}
	hyp, err := c.Hypothesis(ctx, created.ID)
	if err != nil {
		return fmt.Errorf("query: %w", err)
	}
	fmt.Fprintf(out, "converged after %d questions\n", questions)
	fmt.Fprintf(out, "learned over HTTP: %s\n", indentLines(hyp.Query))
	return nil
}

// prepareReplay learns the goal from the full task, renders the seed-only
// session task, and builds the oracle.
func prepareReplay(model, taskSrc string) (seedTask string, oracle oracleFunc, goal string, err error) {
	switch model {
	case "twig":
		return prepareTwig(taskSrc)
	case "join":
		return prepareJoin(taskSrc)
	case "path":
		return preparePath(taskSrc)
	case "schema":
		return prepareSchema(taskSrc)
	}
	return "", nil, "", fmt.Errorf("unknown model %q (want twig, join, path, or schema)", model)
}

func prepareTwig(src string) (string, oracleFunc, string, error) {
	task, err := core.ParseTwigTask(src)
	if err != nil {
		return "", nil, "", err
	}
	goal, err := core.LearnXMLQuery(task.Examples, core.XMLOptions{Schema: task.Schema})
	if err != nil {
		return "", nil, "", err
	}
	// Selection sets per document, by node pointer.
	selected := make([]map[*xmltree.Node]bool, len(task.Docs))
	for i, d := range task.Docs {
		selected[i] = map[*xmltree.Node]bool{}
		for _, n := range goal.Eval(d) {
			selected[i][n] = true
		}
	}
	var b strings.Builder
	for _, d := range task.Docs {
		fmt.Fprintf(&b, "doc %s\n", d.String())
	}
	if task.Schema != nil {
		for _, line := range strings.Split(strings.TrimSpace(task.Schema.String()), "\n") {
			fmt.Fprintf(&b, "schema %s\n", line)
		}
	}
	seeded := false
	for _, ex := range task.Examples {
		if !ex.Positive {
			continue
		}
		for di, d := range task.Docs {
			if d == ex.Doc {
				fmt.Fprintf(&b, "pos %d %s\n", di, core.NodePathOf(ex.Node))
				seeded = true
			}
		}
		if seeded {
			break
		}
	}
	if !seeded {
		return "", nil, "", fmt.Errorf("twig replay needs a positive example in the task")
	}
	oracle := func(item json.RawMessage) (bool, error) {
		var it struct {
			Doc  int    `json:"doc"`
			Path string `json:"path"`
		}
		if err := json.Unmarshal(item, &it); err != nil {
			return false, err
		}
		if it.Doc < 0 || it.Doc >= len(task.Docs) {
			return false, fmt.Errorf("question doc %d out of range", it.Doc)
		}
		node, err := core.ResolveNodePath(task.Docs[it.Doc], it.Path)
		if err != nil {
			return false, err
		}
		return selected[it.Doc][node], nil
	}
	return b.String(), oracle, goal.String(), nil
}

func prepareJoin(src string) (string, oracleFunc, string, error) {
	task, err := core.ParseJoinTask(src)
	if err != nil {
		return "", nil, "", err
	}
	if task.Semijoin {
		return "", nil, "", fmt.Errorf("join replay supports equi-join tasks only")
	}
	u := rellearn.NewUniverse(task.Left, task.Right)
	goalSet, ok := rellearn.JoinConsistent(u, task.Examples)
	if !ok {
		return "", nil, "", fmt.Errorf("no join predicate is consistent with the task examples")
	}
	goalOracle := rellearn.GoalOracle{U: u, Goal: goalSet}
	var b strings.Builder
	fmt.Fprintf(&b, "left %s %s\n", task.Left.Name, strings.Join(task.Left.Attrs, ","))
	task.Left.Each(func(_ int, row []string) { fmt.Fprintf(&b, "lrow %s\n", strings.Join(row, ",")) })
	fmt.Fprintf(&b, "right %s %s\n", task.Right.Name, strings.Join(task.Right.Attrs, ","))
	task.Right.Each(func(_ int, row []string) { fmt.Fprintf(&b, "rrow %s\n", strings.Join(row, ",")) })
	oracle := func(item json.RawMessage) (bool, error) {
		var it struct {
			Left  int `json:"left"`
			Right int `json:"right"`
		}
		if err := json.Unmarshal(item, &it); err != nil {
			return false, err
		}
		return goalOracle.LabelPair(it.Left, it.Right), nil
	}
	pred := u.Decode(goalSet)
	parts := make([]string, len(pred))
	for i, p := range pred {
		parts[i] = p.String()
	}
	return b.String(), oracle, strings.Join(parts, " & "), nil
}

func preparePath(src string) (string, oracleFunc, string, error) {
	task, err := core.ParsePathTask(src)
	if err != nil {
		return "", nil, "", err
	}
	goal, err := core.LearnPathQuery(task.Graph, task.Examples)
	if err != nil {
		return "", nil, "", err
	}
	g := task.Graph
	var b strings.Builder
	for _, e := range g.Triples() {
		fmt.Fprintf(&b, "edge %s %s %s\n", e.From, e.Label, e.To)
	}
	seeded := false
	for _, ex := range task.Examples {
		if ex.Positive {
			fmt.Fprintf(&b, "pos %s %s\n", g.Node(ex.Src), g.Node(ex.Dst))
			seeded = true
			break
		}
	}
	if !seeded {
		return "", nil, "", fmt.Errorf("path replay needs a positive example in the task")
	}
	oracle := func(item json.RawMessage) (bool, error) {
		var it struct {
			Src string `json:"src"`
			Dst string `json:"dst"`
		}
		if err := json.Unmarshal(item, &it); err != nil {
			return false, err
		}
		src, dst := g.NodeIndex(it.Src), g.NodeIndex(it.Dst)
		if src < 0 || dst < 0 {
			return false, fmt.Errorf("question names unknown node (%s, %s)", it.Src, it.Dst)
		}
		return g.Selects(goal, src, dst), nil
	}
	return b.String(), oracle, goal.String(), nil
}

func prepareSchema(src string) (string, oracleFunc, string, error) {
	task, err := core.ParseSchemaTask(src)
	if err != nil {
		return "", nil, "", err
	}
	goal, err := core.LearnSchema(task.Docs)
	if err != nil {
		return "", nil, "", err
	}
	// Seed the session with the first document only; the dialogue must
	// rediscover the rest of the language.
	seedTask := fmt.Sprintf("doc %s\n", task.Docs[0].String())
	oracle := func(item json.RawMessage) (bool, error) {
		var it struct {
			Doc string `json:"doc"`
		}
		if err := json.Unmarshal(item, &it); err != nil {
			return false, err
		}
		doc, err := xmltree.Parse(it.Doc)
		if err != nil {
			return false, err
		}
		return goal.Valid(doc), nil
	}
	return seedTask, oracle, goal.String(), nil
}

// indentLines keeps multi-line hypotheses (schemas) readable in the
// transcript.
func indentLines(s string) string {
	s = strings.TrimSpace(s)
	if !strings.Contains(s, "\n") {
		return s
	}
	return "\n  " + strings.ReplaceAll(s, "\n", "\n  ")
}
