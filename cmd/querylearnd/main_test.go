package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"querylearn/internal/server"
	"querylearn/internal/session"
	"querylearn/internal/store"
	"querylearn/pkg/api"
	"querylearn/pkg/client"
)

var replayTasks = map[string]string{
	"twig": `
doc <lib><book><title/><year/></book><book><title/></book></lib>
doc <lib><book><year/><title/></book></lib>
pos 0 /0/0
pos 1 /0/1
neg 0 /1/0
`,
	"join": `
left P id,city
lrow 1,lille
lrow 2,paris
right O buyer,place
rrow 1,lille
rrow 2,rome
pos 0 0
neg 0 1
`,
	"path": `
edge lille highway paris
edge paris highway lyon
edge lille ferry dover
pos lille lyon
neg lille dover
`,
	"schema": `
doc <r><a/><b/></r>
doc <r><a/><a/><b/></r>
`,
}

// TestReplayAllModels runs the end-to-end driver: for each model, the
// interactive dialogue over HTTP must converge and re-learn the goal the
// batch learner extracts from the full task.
func TestReplayAllModels(t *testing.T) {
	wantLearned := map[string]string{
		"twig":   "learned over HTTP: /lib/book[year]/title",
		"join":   "learned over HTTP: city=place & id=buyer",
		"path":   "learned over HTTP: highway.highway",
		"schema": "r -> a+ || b",
	}
	for model, task := range replayTasks {
		path := filepath.Join(t.TempDir(), model+".txt")
		if err := os.WriteFile(path, []byte(task), 0o644); err != nil {
			t.Fatal(err)
		}
		var out strings.Builder
		if err := run([]string{"replay", model, path}, &out); err != nil {
			t.Fatalf("replay %s: %v\n%s", model, err, out.String())
		}
		transcript := out.String()
		if !strings.Contains(transcript, "converged after") {
			t.Errorf("%s transcript missing convergence line:\n%s", model, transcript)
		}
		if !strings.Contains(transcript, wantLearned[model]) {
			t.Errorf("%s transcript missing %q:\n%s", model, wantLearned[model], transcript)
		}
		// The learned hypothesis must equal the batch goal: every
		// transcript prints both lines, so normalize and compare.
		goal := section(transcript, "goal (batch-learned in-process):", "Q1 ")
		learned := section(transcript, "learned over HTTP:", "\x00")
		if strings.TrimSpace(goal) != strings.TrimSpace(learned) {
			t.Errorf("%s: goal %q != learned %q", model, goal, learned)
		}
	}
}

// section extracts the text between a marker line and the next marker (or
// the end for "\x00").
func section(s, from, to string) string {
	_, rest, ok := strings.Cut(s, from)
	if !ok {
		return ""
	}
	if to != "\x00" {
		if cut, _, ok2 := strings.Cut(rest, to); ok2 {
			return cut
		}
	}
	return rest
}

// TestDaemonKillRecovery is the acceptance scenario for the durable store: a
// daemon started with a data dir, killed without any shutdown (SIGKILL
// leaves no chance to flush or compact) mid-dialogue, and restarted over the
// same directory serves the same session id with byte-identical snapshot
// and hypothesis documents.
func TestDaemonKillRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := session.Config{CostPerHIT: 0.25}
	sc := storeConfig{dataDir: dir, fsync: store.FsyncOff}

	mgr, st, err := openManager(cfg, sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(mgr, server.WithStore(st.Stats)).Handler())

	// Start a dialogue and answer one question over the wire, through the
	// public SDK (the supported client surface).
	ctx := context.Background()
	sdk := client.New(ts.URL, client.WithHTTPClient(ts.Client()))
	created, err := sdk.Create(ctx, api.CreateRequest{Model: "join", Task: replayTasks["join"]})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sdk.Answers(ctx, created.ID, []api.Answer{
		{Item: json.RawMessage(`{"left":1,"right":1}`), Positive: false},
	}, api.ReconcileNone); err != nil {
		t.Fatal(err)
	}
	wantSnap := httpGet(t, ts, "/v1/sessions/"+created.ID+"/snapshot")
	wantHyp := httpGet(t, ts, "/v1/sessions/"+created.ID+"/query")

	// SIGKILL: the server vanishes, the store never flushes, compacts, or
	// closes; the OS releases its directory lock.
	ts.Close()
	st.Abandon()

	mgr2, st2, err := openManager(cfg, sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	ts2 := httptest.NewServer(server.New(mgr2, server.WithStore(st2.Stats)).Handler())
	defer ts2.Close()

	if got := httpGet(t, ts2, "/v1/sessions/"+created.ID+"/snapshot"); got != wantSnap {
		t.Errorf("snapshot diverged across kill/restart:\n got %s\nwant %s", got, wantSnap)
	}
	if got := httpGet(t, ts2, "/v1/sessions/"+created.ID+"/query"); got != wantHyp {
		t.Errorf("hypothesis diverged across kill/restart:\n got %s\nwant %s", got, wantHyp)
	}

	// The restarted daemon reports its recovery in /healthz and /metrics.
	var health struct {
		Status string `json:"status"`
		Store  *struct {
			Fsync      string `json:"fsync"`
			JournalLag int64  `json:"journal_lag"`
		} `json:"store"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, ts2, "/healthz")), &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Store == nil || health.Store.Fsync != store.FsyncOff {
		t.Errorf("healthz = %+v", health)
	}
	var metrics struct {
		Store *struct {
			Recovered struct {
				Sessions int `json:"sessions"`
			} `json:"recovered"`
		} `json:"store"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, ts2, "/metrics")), &metrics); err != nil {
		t.Fatal(err)
	}
	if metrics.Store == nil || metrics.Store.Recovered.Sessions != 1 {
		t.Errorf("metrics store block = %+v", metrics.Store)
	}
}

func httpGet(t *testing.T, ts *httptest.Server, path string) string {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d: %s", path, resp.StatusCode, buf.String())
	}
	return buf.String()
}

func TestHardenServerTimeouts(t *testing.T) {
	srv := hardenServer(&http.Server{})
	if srv.ReadHeaderTimeout <= 0 || srv.ReadTimeout <= 0 || srv.WriteTimeout <= 0 || srv.IdleTimeout <= 0 {
		t.Errorf("hardenServer left a zero timeout: %+v", srv)
	}
}

func TestRunUsageErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"replay", "twig"}, &out); err == nil || !strings.Contains(err.Error(), "usage") {
		t.Errorf("short replay args = %v", err)
	}
	if err := run([]string{"replay", "nope", "/does/not/exist"}, &out); err == nil {
		t.Errorf("missing file should fail")
	}
	path := filepath.Join(t.TempDir(), "t.txt")
	os.WriteFile(path, []byte(replayTasks["twig"]), 0o644)
	if err := run([]string{"replay", "nope", path}, &out); err == nil || !strings.Contains(err.Error(), "unknown model") {
		t.Errorf("unknown model = %v", err)
	}
	if err := run([]string{"-bad-flag"}, &out); err == nil {
		t.Errorf("bad flag should fail")
	}
}
