package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var replayTasks = map[string]string{
	"twig": `
doc <lib><book><title/><year/></book><book><title/></book></lib>
doc <lib><book><year/><title/></book></lib>
pos 0 /0/0
pos 1 /0/1
neg 0 /1/0
`,
	"join": `
left P id,city
lrow 1,lille
lrow 2,paris
right O buyer,place
rrow 1,lille
rrow 2,rome
pos 0 0
neg 0 1
`,
	"path": `
edge lille highway paris
edge paris highway lyon
edge lille ferry dover
pos lille lyon
neg lille dover
`,
	"schema": `
doc <r><a/><b/></r>
doc <r><a/><a/><b/></r>
`,
}

// TestReplayAllModels runs the end-to-end driver: for each model, the
// interactive dialogue over HTTP must converge and re-learn the goal the
// batch learner extracts from the full task.
func TestReplayAllModels(t *testing.T) {
	wantLearned := map[string]string{
		"twig":   "learned over HTTP: /lib/book[year]/title",
		"join":   "learned over HTTP: city=place & id=buyer",
		"path":   "learned over HTTP: highway.highway",
		"schema": "r -> a+ || b",
	}
	for model, task := range replayTasks {
		path := filepath.Join(t.TempDir(), model+".txt")
		if err := os.WriteFile(path, []byte(task), 0o644); err != nil {
			t.Fatal(err)
		}
		var out strings.Builder
		if err := run([]string{"replay", model, path}, &out); err != nil {
			t.Fatalf("replay %s: %v\n%s", model, err, out.String())
		}
		transcript := out.String()
		if !strings.Contains(transcript, "converged after") {
			t.Errorf("%s transcript missing convergence line:\n%s", model, transcript)
		}
		if !strings.Contains(transcript, wantLearned[model]) {
			t.Errorf("%s transcript missing %q:\n%s", model, wantLearned[model], transcript)
		}
		// The learned hypothesis must equal the batch goal: every
		// transcript prints both lines, so normalize and compare.
		goal := section(transcript, "goal (batch-learned in-process):", "Q1 ")
		learned := section(transcript, "learned over HTTP:", "\x00")
		if strings.TrimSpace(goal) != strings.TrimSpace(learned) {
			t.Errorf("%s: goal %q != learned %q", model, goal, learned)
		}
	}
}

// section extracts the text between a marker line and the next marker (or
// the end for "\x00").
func section(s, from, to string) string {
	_, rest, ok := strings.Cut(s, from)
	if !ok {
		return ""
	}
	if to != "\x00" {
		if cut, _, ok2 := strings.Cut(rest, to); ok2 {
			return cut
		}
	}
	return rest
}

func TestRunUsageErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"replay", "twig"}, &out); err == nil || !strings.Contains(err.Error(), "usage") {
		t.Errorf("short replay args = %v", err)
	}
	if err := run([]string{"replay", "nope", "/does/not/exist"}, &out); err == nil {
		t.Errorf("missing file should fail")
	}
	path := filepath.Join(t.TempDir(), "t.txt")
	os.WriteFile(path, []byte(replayTasks["twig"]), 0o644)
	if err := run([]string{"replay", "nope", path}, &out); err == nil || !strings.Contains(err.Error(), "unknown model") {
		t.Errorf("unknown model = %v", err)
	}
	if err := run([]string{"-bad-flag"}, &out); err == nil {
		t.Errorf("bad flag should fail")
	}
}
