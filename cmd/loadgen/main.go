// Command loadgen drives open-loop load at a querylearnd daemon and reports
// the saturation curve: offered load vs achieved throughput and p50/p99/p999
// latency. Arrivals are Poisson-scheduled against the wall clock (a slowing
// server grows the in-flight population instead of slowing the offered
// rate), land on zipf-popular session slots, and walk mixed four-model
// dialogues to convergence via the pkg/client SDK.
//
// Usage:
//
//	loadgen -rates 100,400,1600 -duration 5s            # self-hosted daemon
//	loadgen -addr http://localhost:8080 -rates 500      # external daemon
//	loadgen -smoke -p99-budget 1s                       # CI gate
//
// With no -addr the generator self-hosts an in-process daemon, so the
// numbers measure the serving stack without network noise — the T16
// configuration. -smoke runs one short fixed-seed point and exits non-zero
// on any request error or a p99 over budget.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"querylearn/internal/loadgen"
	"querylearn/internal/obs"
	"querylearn/internal/server"
	"querylearn/internal/session"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	addr := fs.String("addr", "", "target daemon base URL (empty = self-host an in-process daemon)")
	rates := fs.String("rates", "100,400,1600", "comma-separated offered arrival rates (requests/second), swept in order")
	duration := fs.Duration("duration", 3*time.Second, "wall-clock length of each rate's run")
	sessions := fs.Int("sessions", 32, "concurrent dialogue slots arrivals land on")
	zipf := fs.Float64("zipf", 1.3, "zipf exponent for slot popularity (<=1 = uniform)")
	slowFrac := fs.Float64("slow-frac", 0.05, "fraction of arrivals that stall before sending (slow-client tail)")
	slowDelay := fs.Duration("slow-delay", 50*time.Millisecond, "stall length for slow-client arrivals")
	seed := fs.Int64("seed", 1, "rng seed for arrivals, slot choice, and the slow-client coin")
	jsonOut := fs.Bool("json", false, "emit the curve as JSON instead of a table")
	smoke := fs.Bool("smoke", false, "CI gate: one short fixed run; fail on any error or p99 over budget")
	p99Budget := fs.Duration("p99-budget", time.Second, "smoke mode: maximum acceptable p99 latency")
	maxInflight := fs.Int("max-inflight", 256, "self-hosted daemon: per-shard admission budget (0 = unlimited)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	base := *addr
	var hc *http.Client
	if base == "" {
		var stop func()
		var err error
		base, hc, stop, err = selfHost(*maxInflight)
		if err != nil {
			return err
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "loadgen: self-hosted daemon at %s\n", base)
	}

	cfg := loadgen.Config{
		BaseURL:   base,
		Client:    hc,
		Duration:  *duration,
		Sessions:  *sessions,
		ZipfS:     *zipf,
		SlowFrac:  *slowFrac,
		SlowDelay: *slowDelay,
		Seed:      *seed,
	}

	if *smoke {
		cfg.Rate, cfg.Duration = 100, 2*time.Second
		cfg.SlowFrac = 0 // the smoke budget gates the server, not the stall
		r, err := loadgen.Run(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "smoke: %d arrivals, %d dialogues, %d errors, p50 %.1fms p99 %.1fms (budget %s)\n",
			r.Arrivals, r.Dialogues, r.Errors, r.P50Seconds*1000, r.P99Seconds*1000, *p99Budget)
		if r.Errors > 0 {
			return fmt.Errorf("smoke: %d request errors (want 0)", r.Errors)
		}
		if !r.ScrapeOK {
			return fmt.Errorf("smoke: post-run metrics scrape failed")
		}
		if budget := p99Budget.Seconds(); r.P99Seconds > budget {
			return fmt.Errorf("smoke: p99 %.1fms over budget %s", r.P99Seconds*1000, *p99Budget)
		}
		return nil
	}

	var rateList []float64
	for _, s := range strings.Split(*rates, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil || v <= 0 {
			return fmt.Errorf("bad -rates entry %q", s)
		}
		rateList = append(rateList, v)
	}
	points, err := loadgen.RunCurve(cfg, rateList)
	if err != nil {
		return err
	}
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(struct {
			Points []loadgen.Point `json:"points"`
		}{points})
	}
	fmt.Fprintf(out, "%10s %10s %9s %7s %6s %9s %9s %9s %9s\n",
		"offered/s", "achieved/s", "arrivals", "errors", "shed", "p50 ms", "p99 ms", "p999 ms", "max ms")
	for _, p := range points {
		fmt.Fprintf(out, "%10.0f %10.0f %9d %7d %6d %9.2f %9.2f %9.2f %9.2f\n",
			p.OfferedRPS, p.AchievedRPS, p.Arrivals, p.Errors, p.Shed,
			p.P50Seconds*1000, p.P99Seconds*1000, p.P999Seconds*1000, p.MaxSeconds*1000)
	}
	return nil
}

// selfHost starts an in-process daemon with the full observability wiring,
// on a loopback port.
func selfHost(maxInflight int) (base string, hc *http.Client, stop func(), err error) {
	reg := obs.NewRegistry()
	mgr := session.NewManager(session.Config{Shards: 16})
	opts := []server.Option{server.WithObs(reg)}
	if maxInflight > 0 {
		opts = append(opts, server.WithAdmission(maxInflight, 16))
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, nil, err
	}
	srv := &http.Server{Handler: server.New(mgr, opts...).Handler()}
	go srv.Serve(ln)
	return "http://" + ln.Addr().String(),
		&http.Client{Timeout: 30 * time.Second},
		func() { srv.Close() }, nil
}
