package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTask(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunTwigTask(t *testing.T) {
	path := writeTask(t, "twig.txt", `
doc <lib><book><title/><year/></book><book><title/></book></lib>
doc <lib><book><year/><title/></book></lib>
pos 0 /0/0
pos 1 /0/1
neg 0 /1/0
`)
	if err := run([]string{"twig", path}); err != nil {
		t.Fatalf("twig task: %v", err)
	}
}

func TestRunJoinTask(t *testing.T) {
	path := writeTask(t, "join.txt", `
left P id,city
lrow 1,lille
lrow 2,paris
right O buyer,place
rrow 1,lille
rrow 2,rome
pos 0 0
neg 0 1
`)
	if err := run([]string{"join", path}); err != nil {
		t.Fatalf("join task: %v", err)
	}
}

func TestRunSemijoinTask(t *testing.T) {
	path := writeTask(t, "semi.txt", `
left L a
lrow 1
lrow 9
right R b
rrow 1
semijoin
pos 0
neg 1
`)
	if err := run([]string{"join", path}); err != nil {
		t.Fatalf("semijoin task: %v", err)
	}
}

func TestRunPathTask(t *testing.T) {
	path := writeTask(t, "path.txt", `
edge lille highway paris
edge paris highway lyon
edge lille ferry dover
pos lille lyon
neg lille dover
`)
	if err := run([]string{"path", path}); err != nil {
		t.Fatalf("path task: %v", err)
	}
}

func TestRunSchemaTask(t *testing.T) {
	path := writeTask(t, "schema.txt", `
doc <r><a/><b/></r>
doc <r><a/><a/><b/></r>
`)
	if err := run([]string{"schema", path}); err != nil {
		t.Fatalf("schema task: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Errorf("no args should fail")
	}
	if err := run([]string{"twig", "/does/not/exist"}); err == nil {
		t.Errorf("missing file should fail")
	}
	path := writeTask(t, "bad.txt", "doc <a/>\npos 0 /")
	if err := run([]string{"nope", path}); err == nil {
		t.Errorf("unknown kind should fail")
	}
	contradiction := writeTask(t, "contra.txt", `
doc <a><b/></a>
pos 0 /0
neg 0 /0
`)
	if err := run([]string{"twig", contradiction}); err == nil {
		t.Errorf("contradictory task should surface an error")
	}
}
