package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"querylearn/internal/codec"
	"querylearn/internal/session"
	"querylearn/internal/store"
)

func writeTask(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunTwigTask(t *testing.T) {
	path := writeTask(t, "twig.txt", `
doc <lib><book><title/><year/></book><book><title/></book></lib>
doc <lib><book><year/><title/></book></lib>
pos 0 /0/0
pos 1 /0/1
neg 0 /1/0
`)
	if err := run([]string{"twig", path}); err != nil {
		t.Fatalf("twig task: %v", err)
	}
}

func TestRunJoinTask(t *testing.T) {
	path := writeTask(t, "join.txt", `
left P id,city
lrow 1,lille
lrow 2,paris
right O buyer,place
rrow 1,lille
rrow 2,rome
pos 0 0
neg 0 1
`)
	if err := run([]string{"join", path}); err != nil {
		t.Fatalf("join task: %v", err)
	}
}

func TestRunSemijoinTask(t *testing.T) {
	path := writeTask(t, "semi.txt", `
left L a
lrow 1
lrow 9
right R b
rrow 1
semijoin
pos 0
neg 1
`)
	if err := run([]string{"join", path}); err != nil {
		t.Fatalf("semijoin task: %v", err)
	}
}

func TestRunPathTask(t *testing.T) {
	path := writeTask(t, "path.txt", `
edge lille highway paris
edge paris highway lyon
edge lille ferry dover
pos lille lyon
neg lille dover
`)
	if err := run([]string{"path", path}); err != nil {
		t.Fatalf("path task: %v", err)
	}
}

func TestRunSchemaTask(t *testing.T) {
	path := writeTask(t, "schema.txt", `
doc <r><a/><b/></r>
doc <r><a/><a/><b/></r>
`)
	if err := run([]string{"schema", path}); err != nil {
		t.Fatalf("schema task: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Errorf("no args should fail")
	}
	if err := run([]string{"twig", "/does/not/exist"}); err == nil {
		t.Errorf("missing file should fail")
	}
	path := writeTask(t, "bad.txt", "doc <a/>\npos 0 /")
	if err := run([]string{"nope", path}); err == nil {
		t.Errorf("unknown kind should fail")
	}
	contradiction := writeTask(t, "contra.txt", `
doc <a><b/></a>
pos 0 /0
neg 0 /0
`)
	if err := run([]string{"twig", contradiction}); err == nil {
		t.Errorf("contradictory task should surface an error")
	}
}

// TestJournalDumpFromLSN builds a mixed v1-then-v2 journal — exactly what a
// v1 daemon's directory looks like after a v2 daemon appends to it — and
// dumps it from a tail cursor. Only records at or past the cursor may be
// emitted, and a v2 event past the cursor must still decode through the
// dictionary record before it.
func TestJournalDumpFromLSN(t *testing.T) {
	now := time.Unix(1700000000, 0).UTC()
	var raw []byte
	// Records 0,1: v1 JSON.
	for _, ev := range []session.Event{
		{Kind: session.EventCreate, ID: "s1", Model: "join", Task: "left L a\n", CreatedAt: now},
		{Kind: session.EventEvict, ID: "s1"},
	} {
		payload, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		raw = store.FrameRecord(raw, payload)
	}
	// Records 2..: v2 binary, dictionary records interleaved.
	enc := codec.NewEncoder()
	for _, ev := range []session.Event{
		{Kind: session.EventCreate, ID: "s2", Model: "twig", Task: "doc <a/>\npos 0 /\n", CreatedAt: now},
		{Kind: session.EventAnswers, ID: "s2", HITs: 1},
	} {
		buf, dictEnd, err := enc.EncodeEvent(nil, ev)
		if err != nil {
			t.Fatal(err)
		}
		enc.Commit()
		if dictEnd > 0 {
			raw = store.FrameRecord(raw, buf[:dictEnd])
		}
		raw = store.FrameRecord(raw, buf[dictEnd:])
	}
	path := filepath.Join(t.TempDir(), "journal")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// The v2 tail starts at record 2 (a dictionary record); ask for the
	// event records after it.
	out := captureStdout(t, func() {
		if err := run([]string{"journal-dump", "-from-lsn", "3", path}); err != nil {
			t.Fatal(err)
		}
	})
	type line struct {
		Record int             `json:"record"`
		Format string          `json:"format"`
		Type   string          `json:"type"`
		Event  json.RawMessage `json:"event"`
		Error  string          `json:"error"`
	}
	var lines []line
	for _, l := range strings.Split(strings.TrimSpace(out), "\n") {
		var ln line
		if err := json.Unmarshal([]byte(l), &ln); err != nil {
			t.Fatalf("bad dump line %q: %v", l, err)
		}
		lines = append(lines, ln)
	}
	for _, ln := range lines {
		if ln.Record < 3 {
			t.Errorf("record %d emitted before -from-lsn 3", ln.Record)
		}
		if ln.Error != "" {
			t.Errorf("record %d failed to decode: %s — the pre-cursor dictionary was not applied", ln.Record, ln.Error)
		}
	}
	// The v2 create of s2 (record 3) must have round-tripped through the
	// dictionary defined in record 2.
	found := false
	for _, ln := range lines {
		if ln.Format == "v2" && ln.Type == "event" && strings.Contains(string(ln.Event), `"s2"`) {
			found = true
		}
	}
	if !found {
		t.Fatalf("no decoded v2 event for s2 in dump:\n%s", out)
	}
	// A full dump still shows all records, v1 first.
	full := captureStdout(t, func() {
		if err := run([]string{"journal-dump", path}); err != nil {
			t.Fatal(err)
		}
	})
	if n := len(strings.Split(strings.TrimSpace(full), "\n")); n <= len(lines) {
		t.Fatalf("full dump has %d lines, tail dump %d", n, len(lines))
	}
}

// captureStdout redirects os.Stdout around fn — run() prints there directly.
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	fn()
	w.Close()
	os.Stdout = old
	return <-done
}
