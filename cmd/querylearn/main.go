// Command querylearn learns a query from an annotated task file and prints
// it. Task formats are documented in internal/core/task.go and in the
// README; example tasks live under examples/.
//
// Usage:
//
//	querylearn twig   task.txt     learn a twig (XPath-like) query
//	querylearn join   task.txt     learn an equi-join or semijoin predicate
//	querylearn path   task.txt     learn a graph path query
//	querylearn schema task.txt     infer a multiplicity schema
//	querylearn journal-dump [-from-lsn N] <file>
//	                               render a querylearnd journal as JSON lines
//
// journal-dump is recovery forensics for a daemon's -data-dir: it renders
// both journal formats (v1 JSON and v2 binary, including mixed files) as one
// JSON object per record, reporting corrupt records and a torn tail inline
// instead of failing. -from-lsn skips output before a record index — the
// "records" half of a cluster ship cursor — while still decoding the earlier
// records for the dictionary state the tail may reference.
package main

import (
	"flag"
	"fmt"
	"os"

	"querylearn/internal/core"
	"querylearn/internal/relational"
	"querylearn/internal/store"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "querylearn:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) >= 1 && args[0] == "journal-dump" {
		fs := flag.NewFlagSet("journal-dump", flag.ContinueOnError)
		fromLSN := fs.Int64("from-lsn", 0, "emit only records at this index and later (earlier records still decode, for v2 dictionary state)")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		if fs.NArg() != 1 {
			return fmt.Errorf("usage: querylearn journal-dump [-from-lsn N] <journal-file>")
		}
		if *fromLSN < 0 {
			return fmt.Errorf("-from-lsn must be non-negative (got %d)", *fromLSN)
		}
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		return store.DumpJournalFrom(f, os.Stdout, *fromLSN)
	}
	if len(args) != 2 {
		return fmt.Errorf("usage: querylearn {twig|join|path|schema} <task-file> | querylearn journal-dump [-from-lsn N] <journal-file>\n(to serve interactive learning sessions over HTTP, run the querylearnd daemon)")
	}
	kind, path := args[0], args[1]
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	src := string(data)
	switch kind {
	case "twig":
		task, err := core.ParseTwigTask(src)
		if err != nil {
			return err
		}
		q, err := core.LearnXMLQuery(task.Examples, core.XMLOptions{Schema: task.Schema})
		if err != nil {
			return err
		}
		fmt.Printf("learned twig query: %s\n", q)
		fmt.Printf("size: %d pattern nodes\n", q.Size())
		for di, d := range task.Docs {
			for _, n := range q.Eval(d) {
				fmt.Printf("selects doc %d node %s (%s)\n", di, core.NodePathOf(n), n.Label)
			}
		}
	case "join":
		task, err := core.ParseJoinTask(src)
		if err != nil {
			return err
		}
		var pred []relational.AttrPair
		if task.Semijoin {
			pred, err = core.LearnSemijoinQuery(task.Left, task.Right, task.SemiExamples, 0)
		} else {
			pred, err = core.LearnJoinQuery(task.Left, task.Right, task.Examples)
		}
		if err != nil {
			return err
		}
		kindName := "join"
		if task.Semijoin {
			kindName = "semijoin"
		}
		fmt.Printf("learned %s predicate: %v\n", kindName, pred)
		joined, err := relational.EquiJoin(task.Left, task.Right, pred)
		if err != nil {
			return err
		}
		fmt.Printf("selected pairs: %d of %d\n", joined.Len(), task.Left.Len()*task.Right.Len())
	case "path":
		task, err := core.ParsePathTask(src)
		if err != nil {
			return err
		}
		q, err := core.LearnPathQuery(task.Graph, task.Examples)
		if err != nil {
			return err
		}
		fmt.Printf("learned path query: %s\n", q)
		pairs := task.Graph.Eval(q)
		fmt.Printf("selects %d node pairs\n", len(pairs))
		for i, p := range pairs {
			if i >= 10 {
				fmt.Printf("... and %d more\n", len(pairs)-10)
				break
			}
			fmt.Printf("  %s -> %s\n", task.Graph.Node(p.Src), task.Graph.Node(p.Dst))
		}
	case "schema":
		task, err := core.ParseSchemaTask(src)
		if err != nil {
			return err
		}
		s, err := core.LearnSchema(task.Docs)
		if err != nil {
			return err
		}
		fmt.Printf("learned schema:\n%s", s)
	default:
		return fmt.Errorf("unknown task kind %q (want twig, join, path, or schema)", kind)
	}
	return nil
}
