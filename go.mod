module querylearn

go 1.24
