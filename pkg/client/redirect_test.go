package client

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"querylearn/pkg/api"
)

// fakeNode is a minimal cluster-node stand-in: it serves answers for the
// sessions it owns and 307s everything else at the current owner, counting
// what it saw.
type fakeNode struct {
	ts       *httptest.Server
	hits     atomic.Int64
	redirs   atomic.Int64
	lastKey  atomic.Value // string: Idempotency-Key of the last served POST
	lastBody atomic.Value // string
	owner    atomic.Value // string: base URL to redirect to ("" = serve here)
}

func newFakeNode(t *testing.T) *fakeNode {
	n := &fakeNode{}
	n.owner.Store("")
	n.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if owner, _ := n.owner.Load().(string); owner != "" {
			n.redirs.Add(1)
			w.Header().Set("Location", owner+r.URL.RequestURI())
			w.Header().Set(api.NodeHeader, "elsewhere")
			w.WriteHeader(http.StatusTemporaryRedirect)
			json.NewEncoder(w).Encode(api.ErrorResponse{Error: &api.Error{
				Code: "not_owner", Message: "follow the redirect"}})
			return
		}
		n.hits.Add(1)
		if r.Method == http.MethodPost {
			n.lastKey.Store(r.Header.Get(api.IdempotencyKeyHeader))
			body, _ := io.ReadAll(r.Body)
			n.lastBody.Store(string(body))
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(api.AnswerResult{Applied: 1, HITs: 1})
	}))
	t.Cleanup(n.ts.Close)
	return n
}

// TestRedirectFollowPreservesBodyAndKey: a 307 from the primary must be
// re-sent at the owner with the same JSON body and the same Idempotency-Key,
// and the owner learned from the redirect must be cached — the next call for
// that session skips the primary entirely.
func TestRedirectFollowPreservesBodyAndKey(t *testing.T) {
	owner := newFakeNode(t)
	primary := newFakeNode(t)
	primary.owner.Store(owner.ts.URL)

	c := New(primary.ts.URL, WithRetry(0, 0))
	res, err := c.Answers(context.Background(), "s1", []api.Answer{
		{Item: json.RawMessage(`{"k":1}`), Positive: true},
	}, api.ReconcileNone)
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 1 {
		t.Fatalf("result %+v", res)
	}
	if primary.redirs.Load() != 1 || owner.hits.Load() != 1 {
		t.Fatalf("primary redirected %d, owner served %d; want 1 and 1",
			primary.redirs.Load(), owner.hits.Load())
	}
	key, _ := owner.lastKey.Load().(string)
	if key == "" {
		t.Fatal("Idempotency-Key not preserved across the 307")
	}
	body, _ := owner.lastBody.Load().(string)
	var req api.AnswersRequest
	if err := json.Unmarshal([]byte(body), &req); err != nil || len(req.Answers) != 1 || !req.Answers[0].Positive {
		t.Fatalf("owner got body %q", body)
	}

	// Second call: the cached route sends it straight to the owner.
	if _, err := c.Answers(context.Background(), "s1", []api.Answer{
		{Item: json.RawMessage(`{"k":2}`), Positive: false},
	}, api.ReconcileNone); err != nil {
		t.Fatal(err)
	}
	if primary.redirs.Load() != 1 {
		t.Fatalf("second call went through the primary again (%d redirects)", primary.redirs.Load())
	}
	if owner.hits.Load() != 2 {
		t.Fatalf("owner served %d, want 2", owner.hits.Load())
	}
}

// TestRedirectInvalidatesStaleRoute: when ownership moves (the cached owner
// itself starts redirecting), the cache follows the new 307 and is rewritten
// — a third call goes straight to the new owner.
func TestRedirectInvalidatesStaleRoute(t *testing.T) {
	owner1 := newFakeNode(t)
	owner2 := newFakeNode(t)
	primary := newFakeNode(t)
	primary.owner.Store(owner1.ts.URL)

	c := New(primary.ts.URL, WithRetry(0, 0))
	ctx := context.Background()
	ans := []api.Answer{{Item: json.RawMessage(`{}`), Positive: true}}
	if _, err := c.Answers(ctx, "s1", ans, api.ReconcileNone); err != nil {
		t.Fatal(err)
	}
	// Failover: owner1 now bounces to owner2.
	owner1.owner.Store(owner2.ts.URL)
	if _, err := c.Answers(ctx, "s1", ans, api.ReconcileNone); err != nil {
		t.Fatal(err)
	}
	if owner2.hits.Load() != 1 {
		t.Fatalf("owner2 served %d after ownership moved, want 1", owner2.hits.Load())
	}
	// The stale route was replaced: the third call goes direct to owner2.
	if _, err := c.Answers(ctx, "s1", ans, api.ReconcileNone); err != nil {
		t.Fatal(err)
	}
	if owner1.redirs.Load() != 1 {
		t.Fatalf("third call still hit stale owner1 (%d redirects there)", owner1.redirs.Load())
	}
	if owner2.hits.Load() != 2 {
		t.Fatalf("owner2 served %d, want 2", owner2.hits.Load())
	}
}

// TestConnectionErrorFallsBackToPrimary: a dead cached owner must not strand
// the session — the connection error drops the route and the retry goes to
// the primary base.
func TestConnectionErrorFallsBackToPrimary(t *testing.T) {
	owner := newFakeNode(t)
	primary := newFakeNode(t)
	primary.owner.Store(owner.ts.URL)

	c := New(primary.ts.URL, WithRetry(1, 0))
	c.sleep = func(context.Context, time.Duration) error { return nil }
	ctx := context.Background()
	ans := []api.Answer{{Item: json.RawMessage(`{}`), Positive: true}}
	if _, err := c.Answers(ctx, "s1", ans, api.ReconcileNone); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.route("s1"); !ok {
		t.Fatal("no route cached after redirect")
	}

	// The owner dies; the primary adopts the session (serves locally now).
	owner.ts.Close()
	primary.owner.Store("")
	if _, err := c.Answers(ctx, "s1", ans, api.ReconcileNone); err != nil {
		t.Fatalf("call after owner death: %v", err)
	}
	if primary.hits.Load() != 1 {
		t.Fatalf("primary served %d after fallback, want 1", primary.hits.Load())
	}
	if _, ok := c.route("s1"); ok {
		t.Fatal("dead owner's route still cached")
	}
}

// TestRedirectLoopBounded: a misconfigured cluster that redirects in a cycle
// must surface the 307 as an error after maxRedirects hops, not spin.
func TestRedirectLoopBounded(t *testing.T) {
	n := newFakeNode(t)
	n.owner.Store(n.ts.URL) // redirects to itself forever

	c := New(n.ts.URL, WithRetry(0, 0))
	_, err := c.Status(context.Background(), "s1")
	if err == nil {
		t.Fatal("redirect loop returned success")
	}
	if got := n.redirs.Load(); got != maxRedirects+1 {
		t.Fatalf("loop made %d hops, want %d", got, maxRedirects+1)
	}
}

func TestSessionIDFromPath(t *testing.T) {
	for path, want := range map[string]string{
		"/sessions/s1":           "s1",
		"/sessions/s1/answers":   "s1",
		"/sessions/s1/questions": "s1",
		"/sessions":              "",
		"/sessions/resume":       "",
		"/sessions/s%2F1":        "s/1",
		"/sessions/s1?x=1":       "s1",
	} {
		if got := sessionIDFromPath(path); got != want {
			t.Errorf("sessionIDFromPath(%q) = %q, want %q", path, got, want)
		}
	}
}
