// Package client is the typed Go SDK for the querylearn interactive
// learning service: a thin, dependency-free wrapper over the /v1 wire
// protocol defined in pkg/api. Every consumer of the service — the replay
// driver, the throughput experiments, crowd frontends — talks through it
// instead of re-implementing the wire format by hand.
//
// All methods are context-aware. Server-side durability faults (HTTP 503,
// code "journal_unavailable") are retried with backoff: the server
// guarantees a 503'd mutation did not take effect. Create and Answers
// additionally attach a generated Idempotency-Key per logical call, so
// transport-level retries (a response lost to a timeout) are safe too —
// the service replays the stored first response instead of double-creating
// a session or double-charging a batch.
//
// Big-graph path tasks are plain create requests: the task body carries one
// edge line per edge (size the server's -max-body-bytes accordingly) and the
// optional api.CreateRequest.Limits field tightens the session's node and
// question-pool caps below the server's defaults.
//
//	c := client.New("http://localhost:8080")
//	created, err := c.Create(ctx, api.CreateRequest{Model: "join", Task: task})
//	qs, err := c.Questions(ctx, created.ID, 16)   // parallel crowd dispatch
//	res, err := c.Answers(ctx, created.ID, labels, api.ReconcileNone)
//	hyp, err := c.Hypothesis(ctx, created.ID)
//
// Failures surface as *api.Error values; switch on the stable code with
// api.IsCode(err, api.CodeSessionNotFound) etc.
package client

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	mrand "math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"querylearn/pkg/api"
)

// ErrCircuitOpen reports a call the circuit breaker failed fast: the
// service has produced breakerThreshold consecutive transport/503 failures,
// and the cooldown since the last one has not elapsed. The call never
// reached the wire; retry after the cooldown.
var ErrCircuitOpen = errors.New("client: circuit open: service repeatedly unavailable")

// Defaults of the resilience knobs.
const (
	defaultRetries    = 3
	defaultBackoff    = 50 * time.Millisecond
	defaultBackoffCap = 2 * time.Second
	// breakerThreshold consecutive transport/503 failures open the circuit;
	// breakerCooldown later a single probe is let through (half-open).
	breakerThreshold = 8
	breakerCooldown  = 2 * time.Second
	// maxRedirects bounds one logical call's 307 chain. A clustered service
	// answers at most one hop (the session's owner); anything longer is a
	// routing loop.
	maxRedirects = 4
	// maxRoutes caps the session->node route cache.
	maxRoutes = 4096
)

// Client talks to one querylearn service. The zero value is not usable;
// construct with New. Clients are safe for concurrent use.
type Client struct {
	base       string
	hc         *http.Client
	retries    int
	backoff    time.Duration
	backoffCap time.Duration
	cb         *breaker

	// routes caches which node base URL owns each session, learned from the
	// cluster's 307 redirects. A hit sends the request straight to the owner
	// (no redirect round-trip); the entry is invalidated by any further
	// redirect (ownership moved) and by a connection error (node died — the
	// call falls back to the primary base, which reroutes).
	routeMu sync.Mutex
	routes  map[string]string

	// Test seams: the backoff sleeper, the jitter source, and the breaker
	// clock. Production uses real time; unit tests fake all three.
	sleep func(ctx context.Context, d time.Duration) error
	rng   func() float64
	now   func() time.Time
}

// Option configures a Client at construction.
type Option func(*Client)

// WithHTTPClient substitutes the transport (httptest clients, instrumented
// transports, custom timeouts).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithRetry tunes the retry policy: up to retries re-attempts after a
// retryable failure (503, 429 "overloaded", safe transport errors), with
// exponential full-jitter backoff between them — each wait is uniform in
// [0, min(cap, backoff·2^attempt)), so a burst of retrying clients spreads
// out instead of stampeding in lockstep. A server Retry-After header
// overrides the computed wait. retries = 0 disables retrying.
func WithRetry(retries int, backoff time.Duration) Option {
	return func(c *Client) { c.retries, c.backoff = retries, backoff }
}

// WithBackoffCap bounds the exponential backoff's largest wait (default 2s).
func WithBackoffCap(cap time.Duration) Option {
	return func(c *Client) {
		if cap > 0 {
			c.backoffCap = cap
		}
	}
}

// WithCircuitBreaker tunes the client's circuit breaker: threshold
// consecutive transport/503 failures open it (calls fail fast with
// ErrCircuitOpen), and after cooldown one probe call is let through — its
// outcome closes or re-opens the circuit. threshold <= 0 disables the
// breaker entirely.
func WithCircuitBreaker(threshold int, cooldown time.Duration) Option {
	return func(c *Client) {
		if threshold <= 0 {
			c.cb = nil
			return
		}
		c.cb = &breaker{threshold: threshold, cooldown: cooldown}
	}
}

// New builds a Client for the service at baseURL (scheme://host[:port],
// with or without a trailing slash). The breaker is on by default with
// generous settings (8 consecutive failures, 2s cooldown); tune or disable
// it with WithCircuitBreaker.
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:       strings.TrimRight(baseURL, "/"),
		hc:         http.DefaultClient,
		retries:    defaultRetries,
		backoff:    defaultBackoff,
		backoffCap: defaultBackoffCap,
		cb:         &breaker{threshold: breakerThreshold, cooldown: breakerCooldown},
		rng:        mrand.Float64,
		now:        time.Now,
	}
	c.sleep = func(ctx context.Context, d time.Duration) error {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
			return nil
		}
	}
	for _, opt := range opts {
		opt(c)
	}
	// The SDK handles 307s itself (route cache, redirect cap, key-preserving
	// re-send); a transport that auto-follows would hide them. Work on a
	// shallow copy so a caller's shared http.Client is not mutated.
	hc := *c.hc
	hc.CheckRedirect = func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}
	c.hc = &hc
	c.routes = make(map[string]string)
	if c.cb != nil {
		c.cb.now = c.now
	}
	return c
}

// route reports the cached owner base for a session id.
func (c *Client) route(sid string) (string, bool) {
	c.routeMu.Lock()
	defer c.routeMu.Unlock()
	base, ok := c.routes[sid]
	return base, ok
}

// setRoute records (or replaces) a session's owner base; an owner equal to
// the primary base just drops the entry.
func (c *Client) setRoute(sid, base string) {
	if sid == "" {
		return
	}
	c.routeMu.Lock()
	defer c.routeMu.Unlock()
	if base == "" || base == c.base {
		delete(c.routes, sid)
		return
	}
	if len(c.routes) >= maxRoutes {
		for k := range c.routes {
			delete(c.routes, k)
			break
		}
	}
	c.routes[sid] = base
}

func (c *Client) dropRoute(sid string) {
	if sid == "" {
		return
	}
	c.routeMu.Lock()
	delete(c.routes, sid)
	c.routeMu.Unlock()
}

// sessionIDFromPath extracts the session id a /sessions/{id}... call path
// addresses ("" for create, list, resume, and non-session paths).
func sessionIDFromPath(path string) string {
	rest, ok := strings.CutPrefix(path, "/sessions/")
	if !ok {
		return ""
	}
	if i := strings.IndexAny(rest, "/?"); i >= 0 {
		rest = rest[:i]
	}
	if rest == "resume" {
		return ""
	}
	id, err := url.PathUnescape(rest)
	if err != nil {
		return ""
	}
	return id
}

// baseOfLocation reduces a redirect Location to a client base URL.
func baseOfLocation(loc string) string {
	u, err := url.Parse(loc)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return ""
	}
	return u.Scheme + "://" + u.Host
}

// breaker is a half-open circuit breaker. Closed: calls flow, consecutive
// transport/503 failures count up. Open: calls fail fast until cooldown
// elapses. Half-open: one probe call is admitted; its success closes the
// circuit, its failure re-opens it for another cooldown.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu       sync.Mutex
	failures int
	openedAt time.Time
	probing  bool // a half-open probe is in flight
}

// allow gates one attempt, returning ErrCircuitOpen when the circuit is
// open (or a probe already holds the half-open slot).
func (b *breaker) allow() error {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.failures < b.threshold {
		return nil
	}
	if b.now().Sub(b.openedAt) < b.cooldown || b.probing {
		return ErrCircuitOpen
	}
	b.probing = true
	return nil
}

// record reports an attempt's outcome. Any received HTTP response other
// than a 503 counts as contact with a live service and closes the circuit;
// transport errors and 503s count toward opening it.
func (b *breaker) record(ok bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if ok {
		b.failures = 0
		return
	}
	b.failures++
	if b.failures >= b.threshold {
		b.openedAt = b.now()
	}
}

// Create registers a fresh session. The call carries a generated
// idempotency key, so it is safe against lost responses and 503 retries.
func (c *Client) Create(ctx context.Context, req api.CreateRequest) (api.CreateResponse, error) {
	var out api.CreateResponse
	err := c.do(ctx, http.MethodPost, "/sessions", req, newIdemKey(), &out)
	return out, err
}

// Resume rehydrates a snapshotted session under its original id.
func (c *Client) Resume(ctx context.Context, snap api.Snapshot) (api.CreateResponse, error) {
	var out api.CreateResponse
	err := c.do(ctx, http.MethodPost, "/sessions/resume", snap, "", &out)
	return out, err
}

// Status fetches a session's lifecycle summary.
func (c *Client) Status(ctx context.Context, id string) (api.Status, error) {
	var out api.Status
	err := c.do(ctx, http.MethodGet, "/sessions/"+url.PathEscape(id), nil, "", &out)
	return out, err
}

// List pages through the live sessions: up to limit statuses (0 = server
// default) starting after pageToken ("" = first page). The returned
// NextPageToken fetches the following page.
func (c *Client) List(ctx context.Context, limit int, pageToken string) (api.SessionList, error) {
	q := url.Values{}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	if pageToken != "" {
		q.Set("page_token", pageToken)
	}
	path := "/sessions"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var out api.SessionList
	err := c.do(ctx, http.MethodGet, path, nil, "", &out)
	return out, err
}

// Question fetches the next informative item. ok=false means the session
// has converged.
func (c *Client) Question(ctx context.Context, id string) (q api.Question, ok bool, err error) {
	var out api.QuestionResponse
	if err := c.do(ctx, http.MethodGet, "/sessions/"+url.PathEscape(id)+"/question", nil, "", &out); err != nil {
		return api.Question{}, false, err
	}
	if out.Done || out.Question == nil {
		return api.Question{}, false, nil
	}
	return *out.Question, true, nil
}

// Questions fetches up to n pairwise-distinct informative items for
// parallel crowd dispatch (1 <= n <= api.MaxQuestionBatch). An empty
// result means the session has converged.
func (c *Client) Questions(ctx context.Context, id string, n int) ([]api.Question, error) {
	var out api.QuestionsResponse
	path := fmt.Sprintf("/sessions/%s/questions?n=%d", url.PathEscape(id), n)
	if err := c.do(ctx, http.MethodGet, path, nil, "", &out); err != nil {
		return nil, err
	}
	return out.Questions, nil
}

// Answers submits a batch of labels. The call carries a generated
// idempotency key, so a retried batch within this call's retry loop never
// double-charges the session's crowd budget (the server holds stored
// responses in memory; see the Idempotency section of pkg/api for the
// window's limits).
func (c *Client) Answers(ctx context.Context, id string, answers []api.Answer, reconcile string) (api.AnswerResult, error) {
	var out api.AnswerResult
	req := api.AnswersRequest{Answers: answers, Reconcile: reconcile}
	err := c.do(ctx, http.MethodPost, "/sessions/"+url.PathEscape(id)+"/answers", req, newIdemKey(), &out)
	return out, err
}

// Hypothesis fetches the current best hypothesis.
func (c *Client) Hypothesis(ctx context.Context, id string) (api.Hypothesis, error) {
	var out api.Hypothesis
	err := c.do(ctx, http.MethodGet, "/sessions/"+url.PathEscape(id)+"/query", nil, "", &out)
	return out, err
}

// Snapshot fetches the persistable session state.
func (c *Client) Snapshot(ctx context.Context, id string) (api.Snapshot, error) {
	var out api.Snapshot
	err := c.do(ctx, http.MethodGet, "/sessions/"+url.PathEscape(id)+"/snapshot", nil, "", &out)
	return out, err
}

// Delete evicts a session.
func (c *Client) Delete(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/sessions/"+url.PathEscape(id), nil, "", nil)
}

// do is the one wire path: marshal, attach headers, retry per policy,
// decode the 2xx body or surface the structured error.
func (c *Client) do(ctx context.Context, method, path string, body any, idemKey string, into any) error {
	var payload []byte
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
		payload = b
	}
	// A cached route sends the call straight at the session's owner node;
	// without one it goes to the primary base, which redirects if needed.
	sid := sessionIDFromPath(path)
	base := c.base
	if sid != "" {
		if owner, ok := c.route(sid); ok {
			base = owner
		}
	}
	// One request id per logical call, reused across retries: server-side
	// logs then show every attempt of a stalled dialogue under one
	// correlator, exactly like the idempotency key pins the write itself.
	requestID := newIdemKey()
	redirects := 0
	for attempt := 0; ; attempt++ {
		if err := c.cb.allow(); err != nil {
			return err
		}
		u := base + api.V1Prefix + path
		req, err := http.NewRequestWithContext(ctx, method, u, bytes.NewReader(payload))
		if err != nil {
			c.cb.record(true) // a malformed request says nothing about the service
			return err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		if idemKey != "" {
			req.Header.Set(api.IdempotencyKeyHeader, idemKey)
		}
		if requestID != "" {
			req.Header.Set(api.RequestIDHeader, requestID)
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			c.cb.record(false)
			if base != c.base {
				// The cached owner is unreachable — likely dead. Drop the
				// route and fall back to the primary base, which knows the
				// post-failover owner; the fallback itself is free (the
				// request never got a response from a working node).
				c.dropRoute(sid)
				base = c.base
			}
			// A transport error may have lost a response after the server
			// acted; only requests that are safe to re-send (reads, or
			// writes pinned by an idempotency key) are retried.
			if attempt < c.retries && (method == http.MethodGet || idemKey != "") {
				if werr := c.wait(ctx, attempt, 0); werr != nil {
					return werr
				}
				continue
			}
			return err
		}
		respBody, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		// Any answer but a 503 is a live, functioning service to the breaker
		// — including 4xx rejections of this particular request.
		c.cb.record(resp.StatusCode != http.StatusServiceUnavailable)
		if err != nil {
			return fmt.Errorf("client: reading response: %w", err)
		}
		if resp.StatusCode == http.StatusTemporaryRedirect && redirects < maxRedirects {
			if nb := baseOfLocation(resp.Header.Get("Location")); nb != "" {
				// A cluster ownership signal: cache the owner (replacing any
				// stale route) and re-send the identical request — method,
				// body, and Idempotency-Key — at it. Redirect hops do not
				// consume the retry budget; they are bounded by maxRedirects.
				c.setRoute(sid, nb)
				base = nb
				redirects++
				attempt--
				continue
			}
		}
		if resp.StatusCode == http.StatusServiceUnavailable && attempt < c.retries {
			// 503 is the server's contract that the mutation did NOT take
			// effect (journal unavailable, draining), so any method may retry
			// it, waiting out a server-provided Retry-After first.
			if werr := c.wait(ctx, attempt, retryAfter(resp)); werr != nil {
				return werr
			}
			continue
		}
		if resp.StatusCode == http.StatusTooManyRequests && attempt < c.retries &&
			api.IsCode(decodeError(resp.StatusCode, respBody), api.CodeOverloaded) {
			// Admission control shed the request before any work happened, so
			// it is retryable regardless of method — unlike other 429s (e.g.
			// "too_many_sessions"), which are terminal resource limits.
			if werr := c.wait(ctx, attempt, retryAfter(resp)); werr != nil {
				return werr
			}
			continue
		}
		if resp.StatusCode == http.StatusConflict && idemKey != "" && attempt < c.retries &&
			api.IsCode(decodeError(resp.StatusCode, respBody), api.CodeIdempotencyConflict) {
			// Our own earlier attempt may still be executing server-side (a
			// timeout-triggered retry racing the original request); once it
			// finishes, the same key replays its stored response. Keys are
			// generated fresh per logical call, so a body-mismatch conflict
			// cannot be our doing and resolves to the terminal 409 below
			// after the retries run out.
			if werr := c.wait(ctx, attempt, 0); werr != nil {
				return werr
			}
			continue
		}
		if resp.StatusCode/100 == 2 {
			if into == nil || len(respBody) == 0 {
				return nil
			}
			if err := json.Unmarshal(respBody, into); err != nil {
				return fmt.Errorf("client: decoding %s %s response: %w", method, path, err)
			}
			return nil
		}
		return decodeError(resp.StatusCode, respBody)
	}
}

// retryAfter reads a response's Retry-After header as whole seconds (the
// only form the service emits); 0 when absent or unparseable.
func retryAfter(resp *http.Response) time.Duration {
	raw := resp.Header.Get(api.RetryAfterHeader)
	if raw == "" {
		return 0
	}
	secs, err := strconv.Atoi(raw)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// wait sleeps before the next attempt, honoring ctx cancellation. A
// server-provided Retry-After wins; otherwise the wait is exponential with
// full jitter — uniform in [0, min(cap, backoff·2^attempt)] — so retrying
// clients decorrelate instead of stampeding the recovering server together.
func (c *Client) wait(ctx context.Context, attempt int, server time.Duration) error {
	d := server
	if d <= 0 {
		ceil := c.backoff
		for i := 0; i < attempt && ceil < c.backoffCap; i++ {
			ceil *= 2
		}
		if ceil > c.backoffCap {
			ceil = c.backoffCap
		}
		if ceil <= 0 {
			return ctx.Err()
		}
		d = time.Duration(c.rng() * float64(ceil))
	}
	if d <= 0 {
		return ctx.Err()
	}
	return c.sleep(ctx, d)
}

// decodeError turns a non-2xx response into a *api.Error, falling back to
// a plain error when the body is not the structured envelope.
func decodeError(status int, body []byte) error {
	var er api.ErrorResponse
	if err := json.Unmarshal(body, &er); err == nil && er.Error != nil && er.Error.Code != "" {
		er.Error.Status = status
		return er.Error
	}
	return fmt.Errorf("client: HTTP %d: %s", status, bytes.TrimSpace(body))
}

// newIdemKey generates a fresh idempotency key: 128 random bits, hex.
func newIdemKey() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is unrecoverable for the process anyway;
		// degrade to "no key" rather than panic inside a client library.
		return ""
	}
	return hex.EncodeToString(b[:])
}
