package client

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"querylearn/pkg/api"
)

// rtFunc adapts a function to http.RoundTripper.
type rtFunc func(*http.Request) (*http.Response, error)

func (f rtFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

// fakeClock drives the client's time seams: sleeps are recorded instead of
// slept, and now() is an advanceable instant.
type fakeClock struct {
	slept []time.Duration
	at    time.Time
}

func (f *fakeClock) sleep(_ context.Context, d time.Duration) error {
	f.slept = append(f.slept, d)
	return nil
}

// wire installs the clock into a client.
func (f *fakeClock) wire(c *Client) {
	c.sleep = f.sleep
	c.now = func() time.Time { return f.at }
	if c.cb != nil {
		c.cb.now = c.now
	}
}

// jsonResponse fabricates a structured API response.
func jsonResponse(status int, body string, headers map[string]string) *http.Response {
	resp := &http.Response{
		StatusCode: status,
		Header:     http.Header{"Content-Type": []string{"application/json"}},
		Body:       io.NopCloser(bytes.NewReader([]byte(body))),
	}
	for k, v := range headers {
		resp.Header.Set(k, v)
	}
	return resp
}

func errBody(code string) string {
	return fmt.Sprintf(`{"error":{"code":%q,"message":"synthetic"}}`, code)
}

// TestBackoffIsExponentialWithFullJitter: without a Retry-After, waits are
// rng() times an exponentially growing ceiling, capped.
func TestBackoffIsExponentialWithFullJitter(t *testing.T) {
	clk := &fakeClock{at: time.Unix(0, 0)}
	calls := 0
	c := New("http://fake",
		WithHTTPClient(&http.Client{Transport: rtFunc(func(*http.Request) (*http.Response, error) {
			calls++
			return nil, errors.New("connection refused")
		})}),
		WithRetry(4, 100*time.Millisecond),
		WithBackoffCap(400*time.Millisecond),
		WithCircuitBreaker(0, 0), // isolate the backoff behavior
	)
	clk.wire(c)
	c.rng = func() float64 { return 0.5 } // jitter draw is deterministic

	_, err := c.Status(context.Background(), "x")
	if err == nil {
		t.Fatal("all attempts failing must surface the error")
	}
	if calls != 5 {
		t.Fatalf("transport called %d times, want 5 (1 + 4 retries)", calls)
	}
	// Ceilings 100, 200, 400, 400 (capped); each wait = 0.5 × ceiling.
	want := []time.Duration{50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond, 200 * time.Millisecond}
	if len(clk.slept) != len(want) {
		t.Fatalf("slept %v, want %v", clk.slept, want)
	}
	for i := range want {
		if clk.slept[i] != want[i] {
			t.Fatalf("slept %v, want %v", clk.slept, want)
		}
	}
}

// TestRetryAfterOverridesBackoff: a server Retry-After header wins over the
// computed jitter, on both 503 and 429 "overloaded".
func TestRetryAfterOverridesBackoff(t *testing.T) {
	clk := &fakeClock{at: time.Unix(0, 0)}
	responses := []*http.Response{
		jsonResponse(http.StatusServiceUnavailable, errBody(api.CodeJournalUnavailable),
			map[string]string{api.RetryAfterHeader: "7"}),
		jsonResponse(http.StatusTooManyRequests, errBody(api.CodeOverloaded),
			map[string]string{api.RetryAfterHeader: "3"}),
		jsonResponse(http.StatusOK, `{"id":"s1","model":"join"}`, nil),
	}
	i := 0
	c := New("http://fake",
		WithHTTPClient(&http.Client{Transport: rtFunc(func(*http.Request) (*http.Response, error) {
			resp := responses[i]
			i++
			return resp, nil
		})}),
		WithRetry(3, 50*time.Millisecond),
	)
	clk.wire(c)
	c.rng = func() float64 { t.Error("jitter drawn despite Retry-After"); return 0 }

	out, err := c.Create(context.Background(), api.CreateRequest{Model: "join", Task: "t"})
	if err != nil || out.ID != "s1" {
		t.Fatalf("Create = (%+v, %v)", out, err)
	}
	want := []time.Duration{7 * time.Second, 3 * time.Second}
	if len(clk.slept) != 2 || clk.slept[0] != want[0] || clk.slept[1] != want[1] {
		t.Fatalf("slept %v, want %v", clk.slept, want)
	}
}

// Test429OnlyOverloadedRetries: a 429 with a terminal code (the session
// cap) is NOT retried — only admission sheds are.
func Test429OnlyOverloadedRetries(t *testing.T) {
	clk := &fakeClock{at: time.Unix(0, 0)}
	calls := 0
	c := New("http://fake",
		WithHTTPClient(&http.Client{Transport: rtFunc(func(*http.Request) (*http.Response, error) {
			calls++
			return jsonResponse(http.StatusTooManyRequests, errBody(api.CodeTooManySessions), nil), nil
		})}),
		WithRetry(3, 50*time.Millisecond),
	)
	clk.wire(c)

	_, err := c.Create(context.Background(), api.CreateRequest{Model: "join", Task: "t"})
	if !api.IsCode(err, api.CodeTooManySessions) {
		t.Fatalf("err = %v", err)
	}
	if calls != 1 || len(clk.slept) != 0 {
		t.Errorf("terminal 429 retried: %d calls, slept %v", calls, clk.slept)
	}
}

// TestCircuitBreakerHalfOpenCycle: consecutive failures open the circuit
// (fail-fast with ErrCircuitOpen, no wire traffic), the cooldown admits one
// probe, and the probe's outcome re-opens or closes the circuit.
func TestCircuitBreakerHalfOpenCycle(t *testing.T) {
	clk := &fakeClock{at: time.Unix(1000, 0)}
	calls, healthy := 0, false
	c := New("http://fake",
		WithHTTPClient(&http.Client{Transport: rtFunc(func(*http.Request) (*http.Response, error) {
			calls++
			if healthy {
				return jsonResponse(http.StatusOK, `{"id":"s","model":"join"}`, nil), nil
			}
			return nil, errors.New("connection refused")
		})}),
		WithRetry(0, 0), // one attempt per call: failures count 1:1
		WithCircuitBreaker(3, 10*time.Second),
	)
	clk.wire(c)
	ctx := context.Background()

	for i := 0; i < 3; i++ {
		if _, err := c.Status(ctx, "x"); err == nil {
			t.Fatal("failing transport must error")
		}
	}
	if calls != 3 {
		t.Fatalf("transport calls = %d", calls)
	}
	// Open: the next call fails fast without touching the wire.
	if _, err := c.Status(ctx, "x"); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open-circuit call = %v, want ErrCircuitOpen", err)
	}
	if calls != 3 {
		t.Fatalf("open circuit still hit the wire (%d calls)", calls)
	}

	// Half-open: after the cooldown one probe goes through; it fails, so the
	// circuit re-opens for another cooldown.
	clk.at = clk.at.Add(11 * time.Second)
	if _, err := c.Status(ctx, "x"); errors.Is(err, ErrCircuitOpen) {
		t.Fatal("cooldown elapsed but probe was not admitted")
	}
	if calls != 4 {
		t.Fatalf("probe did not reach the wire (%d calls)", calls)
	}
	if _, err := c.Status(ctx, "x"); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("failed probe did not re-open the circuit: %v", err)
	}

	// The service recovers: the next probe succeeds and closes the circuit.
	healthy = true
	clk.at = clk.at.Add(11 * time.Second)
	if _, err := c.Status(ctx, "x"); err != nil {
		t.Fatalf("successful probe = %v", err)
	}
	if _, err := c.Status(ctx, "x"); err != nil {
		t.Fatalf("closed circuit rejected a call: %v", err)
	}
	if calls != 6 {
		t.Errorf("transport calls = %d, want 6", calls)
	}
}

// TestBreakerIgnoresClientErrors: 4xx responses prove the service is alive
// and must not open the circuit.
func TestBreakerIgnoresClientErrors(t *testing.T) {
	clk := &fakeClock{at: time.Unix(0, 0)}
	calls := 0
	c := New("http://fake",
		WithHTTPClient(&http.Client{Transport: rtFunc(func(*http.Request) (*http.Response, error) {
			calls++
			return jsonResponse(http.StatusNotFound, errBody(api.CodeSessionNotFound), nil), nil
		})}),
		WithRetry(0, 0),
		WithCircuitBreaker(2, 10*time.Second),
	)
	clk.wire(c)
	for i := 0; i < 5; i++ {
		if _, err := c.Status(context.Background(), "x"); !api.IsCode(err, api.CodeSessionNotFound) {
			t.Fatalf("call %d = %v", i, err)
		}
	}
	if calls != 5 {
		t.Errorf("4xx responses opened the circuit: %d wire calls", calls)
	}
}
