package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"querylearn/internal/server"
	"querylearn/internal/session"
	"querylearn/pkg/api"
)

const (
	joinTask = `left P id,city
lrow 1,lille
lrow 2,paris
right O buyer,place
rrow 1,lille
rrow 2,rome
`
	pathTask = `edge lille highway paris
edge paris highway lyon
edge lille ferry dover
pos lille lyon
`
	twigTask = `doc <lib><book><title/><year/></book><book><title/></book></lib>
doc <lib><book><year/><title/></book></lib>
pos 0 /0/0
`
	schemaTask = `doc <r><a/><b/></r>
doc <r><a/><a/><b/></r>
`
)

var contractTasks = map[string]string{
	"twig": twigTask, "join": joinTask, "path": pathTask, "schema": schemaTask,
}

// contractOracles answers the wire items for the fixed goals of the
// fixtures above.
func contractOracles() map[string]func(json.RawMessage) bool {
	return map[string]func(json.RawMessage) bool{
		"twig": func(item json.RawMessage) bool {
			var it struct {
				Doc  int    `json:"doc"`
				Path string `json:"path"`
			}
			_ = json.Unmarshal(item, &it)
			return it.Doc == 0 && it.Path == "/0/0" || it.Doc == 1 && it.Path == "/0/1"
		},
		"join": func(item json.RawMessage) bool {
			var it struct{ Left, Right int }
			_ = json.Unmarshal(item, &it)
			return it.Left == 0 && it.Right == 0
		},
		"path": func(item json.RawMessage) bool {
			var it struct{ Src, Dst string }
			_ = json.Unmarshal(item, &it)
			return it.Src == "lille" && it.Dst == "lyon"
		},
		"schema": func(item json.RawMessage) bool {
			var it struct{ Doc string }
			_ = json.Unmarshal(item, &it)
			return strings.Count(it.Doc, "<a/>") >= 1 && strings.Count(it.Doc, "<b/>") == 1
		},
	}
}

func newContractServer(t *testing.T, cfg session.Config) (*Client, *httptest.Server, *session.Manager) {
	t.Helper()
	mgr := session.NewManager(cfg)
	ts := httptest.NewServer(server.New(mgr).Handler())
	t.Cleanup(ts.Close)
	return New(ts.URL, WithHTTPClient(ts.Client())), ts, mgr
}

// TestSDKFullDialogueAllModels drives every model's complete dialogue —
// create, status, question/answer to convergence, hypothesis, snapshot,
// resume, list, delete — through the typed SDK alone.
func TestSDKFullDialogueAllModels(t *testing.T) {
	ctx := context.Background()
	sdk, _, mgr := newContractServer(t, session.Config{})
	orcs := contractOracles()
	for model, task := range contractTasks {
		created, err := sdk.Create(ctx, api.CreateRequest{Model: model, Task: task})
		if err != nil {
			t.Fatalf("%s create: %v", model, err)
		}
		if created.Model != model || created.ID == "" {
			t.Fatalf("%s create response = %+v", model, created)
		}
		st, err := sdk.Status(ctx, created.ID)
		if err != nil || st.ID != created.ID {
			t.Fatalf("%s status = %+v, %v", model, st, err)
		}
		for rounds := 0; ; rounds++ {
			if rounds > 500 {
				t.Fatalf("%s did not converge", model)
			}
			q, ok, err := sdk.Question(ctx, created.ID)
			if err != nil {
				t.Fatalf("%s question: %v", model, err)
			}
			if !ok {
				break
			}
			if _, err := sdk.Answers(ctx, created.ID, []api.Answer{
				{Item: q.Item, Positive: orcs[model](q.Item)},
			}, api.ReconcileNone); err != nil {
				t.Fatalf("%s answers: %v", model, err)
			}
		}
		hyp, err := sdk.Hypothesis(ctx, created.ID)
		if err != nil || !hyp.Converged || hyp.Model != model {
			t.Fatalf("%s hypothesis = %+v, %v", model, hyp, err)
		}
		// Snapshot → resume round-trips through the SDK types exactly.
		snap, err := sdk.Snapshot(ctx, created.ID)
		if err != nil || snap.ID != created.ID {
			t.Fatalf("%s snapshot = %+v, %v", model, snap, err)
		}
		if err := sdk.Delete(ctx, created.ID); err != nil {
			t.Fatalf("%s delete: %v", model, err)
		}
		resumed, err := sdk.Resume(ctx, snap)
		if err != nil || resumed.ID != created.ID {
			t.Fatalf("%s resume = %+v, %v", model, resumed, err)
		}
		hyp2, err := sdk.Hypothesis(ctx, created.ID)
		if err != nil || hyp2.Query != hyp.Query {
			t.Fatalf("%s resumed hypothesis %q != %q (%v)", model, hyp2.Query, hyp.Query, err)
		}
		if err := sdk.Delete(ctx, created.ID); err != nil {
			t.Fatal(err)
		}
	}
	if mgr.Len() != 0 {
		t.Errorf("%d sessions leaked", mgr.Len())
	}
}

// TestSDKQuestionsBatch: the batch surface through the SDK returns distinct
// items and answering them as one batch converges the dialogue.
func TestSDKQuestionsBatch(t *testing.T) {
	ctx := context.Background()
	sdk, _, _ := newContractServer(t, session.Config{})
	orcs := contractOracles()
	created, err := sdk.Create(ctx, api.CreateRequest{Model: "join", Task: joinTask})
	if err != nil {
		t.Fatal(err)
	}
	qs, err := sdk.Questions(ctx, created.ID, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) == 0 || len(qs) > 16 {
		t.Fatalf("Questions(16) returned %d items", len(qs))
	}
	seen := map[string]bool{}
	answers := make([]api.Answer, len(qs))
	for i, q := range qs {
		key, err := session.ItemKey(q.Item)
		if err != nil {
			t.Fatal(err)
		}
		if seen[key] {
			t.Errorf("duplicate item in SDK batch: %s", q.Item)
		}
		seen[key] = true
		answers[i] = api.Answer{Item: q.Item, Positive: orcs["join"](q.Item)}
	}
	res, err := sdk.Answers(ctx, created.ID, answers, api.ReconcileNone)
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != len(answers) {
		t.Errorf("batch applied %d of %d", res.Applied, len(answers))
	}
}

// TestSDKListPagination pages the live sessions through the SDK.
func TestSDKListPagination(t *testing.T) {
	ctx := context.Background()
	sdk, _, _ := newContractServer(t, session.Config{})
	for i := 0; i < 5; i++ {
		if _, err := sdk.Create(ctx, api.CreateRequest{Model: "join", Task: joinTask}); err != nil {
			t.Fatal(err)
		}
	}
	total, token := 0, ""
	for page := 0; ; page++ {
		if page > 10 {
			t.Fatal("pagination did not terminate")
		}
		list, err := sdk.List(ctx, 2, token)
		if err != nil {
			t.Fatal(err)
		}
		total += len(list.Sessions)
		if list.NextPageToken == "" {
			break
		}
		token = list.NextPageToken
	}
	if total != 5 {
		t.Errorf("listed %d sessions, want 5", total)
	}
}

// failingJournal fails its first fail appends, then succeeds.
type failingJournal struct {
	attempts atomic.Int64
	fail     int64
}

func (j *failingJournal) Append(session.Event) error {
	if j.attempts.Add(1) <= j.fail {
		return errors.New("disk on fire")
	}
	return nil
}

// TestSDKRetriesOn503: a transient journal failure surfaces as 503
// journal_unavailable, which the SDK retries until the write lands.
func TestSDKRetriesOn503(t *testing.T) {
	j := &failingJournal{fail: 2}
	mgr := session.NewManager(session.Config{Journal: j})
	ts := httptest.NewServer(server.New(mgr).Handler())
	t.Cleanup(ts.Close)
	sdk := New(ts.URL, WithHTTPClient(ts.Client()), WithRetry(3, time.Millisecond))

	created, err := sdk.Create(context.Background(), api.CreateRequest{Model: "join", Task: joinTask})
	if err != nil {
		t.Fatalf("create did not survive transient journal failure: %v", err)
	}
	if created.ID == "" || j.attempts.Load() != 3 {
		t.Errorf("created %+v after %d journal attempts, want 3", created, j.attempts.Load())
	}
	if mgr.Len() != 1 {
		t.Errorf("%d live sessions, want 1", mgr.Len())
	}
}

// droppingTransport forwards requests but reports a transport error for the
// first matched response — simulating a reply lost on the wire after the
// server already acted.
type droppingTransport struct {
	base    http.RoundTripper
	dropped atomic.Bool
	match   string
}

func (d *droppingTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	resp, err := d.base.RoundTrip(r)
	if err != nil {
		return nil, err
	}
	if r.Method == http.MethodPost && strings.HasSuffix(r.URL.Path, d.match) && d.dropped.CompareAndSwap(false, true) {
		resp.Body.Close()
		return nil, errors.New("connection reset mid-response")
	}
	return resp, nil
}

// TestSDKIdempotentRetryAfterLostResponse: the SDK's generated
// Idempotency-Key makes a lost create response safe — the retry replays
// the stored response and exactly one session exists.
func TestSDKIdempotentRetryAfterLostResponse(t *testing.T) {
	mgr := session.NewManager(session.Config{})
	ts := httptest.NewServer(server.New(mgr).Handler())
	t.Cleanup(ts.Close)
	hc := &http.Client{Transport: &droppingTransport{base: http.DefaultTransport, match: "/sessions"}}
	sdk := New(ts.URL, WithHTTPClient(hc), WithRetry(3, time.Millisecond))

	created, err := sdk.Create(context.Background(), api.CreateRequest{Model: "join", Task: joinTask})
	if err != nil {
		t.Fatalf("create did not survive a lost response: %v", err)
	}
	if mgr.Len() != 1 {
		t.Errorf("%d live sessions after idempotent retry, want exactly 1", mgr.Len())
	}
	if _, err := sdk.Status(context.Background(), created.ID); err != nil {
		t.Errorf("replayed id %q is not live: %v", created.ID, err)
	}
}

// conflictOnceTransport fabricates one 409 idempotency_conflict response
// for the first matched request — the shape the server returns while an
// earlier attempt under the same key is still in flight — then forwards.
type conflictOnceTransport struct {
	base     http.RoundTripper
	conflict atomic.Bool
	match    string
}

func (d *conflictOnceTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if r.Method == http.MethodPost && strings.HasSuffix(r.URL.Path, d.match) && d.conflict.CompareAndSwap(false, true) {
		body, _ := json.Marshal(api.ErrorResponse{Error: &api.Error{
			Code: api.CodeIdempotencyConflict, Message: "request with this key is still in flight",
		}})
		return &http.Response{
			StatusCode:    http.StatusConflict,
			Header:        http.Header{"Content-Type": []string{"application/json"}},
			Body:          io.NopCloser(bytes.NewReader(body)),
			Request:       r,
			ContentLength: int64(len(body)),
		}, nil
	}
	return d.base.RoundTrip(r)
}

// TestSDKRetriesInFlightConflict: a keyed write that races its own earlier
// attempt (409 idempotency_conflict) is retried until the stored response
// replays, instead of surfacing a spurious failure.
func TestSDKRetriesInFlightConflict(t *testing.T) {
	mgr := session.NewManager(session.Config{})
	ts := httptest.NewServer(server.New(mgr).Handler())
	t.Cleanup(ts.Close)
	tr := &conflictOnceTransport{base: http.DefaultTransport, match: "/sessions"}
	sdk := New(ts.URL, WithHTTPClient(&http.Client{Transport: tr}), WithRetry(3, time.Millisecond))

	created, err := sdk.Create(context.Background(), api.CreateRequest{Model: "join", Task: joinTask})
	if err != nil {
		t.Fatalf("create did not survive an in-flight idempotency conflict: %v", err)
	}
	if created.ID == "" || !tr.conflict.Load() {
		t.Fatalf("conflict was not injected (created %+v)", created)
	}
	if mgr.Len() != 1 {
		t.Errorf("%d live sessions, want 1", mgr.Len())
	}
}

// TestEveryStableErrorCode is the error-contract sweep: every code in
// api.Codes is provoked over a real HTTP connection and comes back with
// that exact code (through the SDK where the SDK can express the request,
// raw HTTP where it cannot).
func TestEveryStableErrorCode(t *testing.T) {
	ctx := context.Background()
	covered := map[string]bool{}

	// expect asserts err is an *api.Error with the given code.
	expect := func(code string, err error) {
		t.Helper()
		var ae *api.Error
		if !errors.As(err, &ae) {
			t.Errorf("%s: got %v (type %T), want *api.Error", code, err, err)
			return
		}
		if ae.Code != code {
			t.Errorf("got code %q (%s), want %q", ae.Code, ae.Message, code)
			return
		}
		if !api.IsCode(err, code) {
			t.Errorf("api.IsCode(%q) = false for %v", code, err)
		}
		covered[code] = true
	}
	// rawExpect posts raw bytes and asserts the envelope code.
	sdkNoRetry := func(ts *httptest.Server) *Client {
		return New(ts.URL, WithHTTPClient(ts.Client()), WithRetry(0, 0))
	}

	sdk, ts, _ := newContractServer(t, session.Config{MaxSessions: 2, CostPerHIT: 1})
	rawExpect := func(code string, path, contentType string, body []byte, extra map[string]string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+path, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		for k, v := range extra {
			req.Header.Set(k, v)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var er api.ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil || er.Error == nil {
			t.Errorf("%s: could not decode error envelope: %v", code, err)
			return
		}
		er.Error.Status = resp.StatusCode
		expect(code, er.Error)
	}

	// bad_request: unknown model.
	_, err := sdk.Create(ctx, api.CreateRequest{Model: "nope", Task: "x"})
	expect(api.CodeBadRequest, err)

	// session_not_found.
	_, err = sdk.Status(ctx, "missing")
	expect(api.CodeSessionNotFound, err)

	// A live session for the parameter/answer cases.
	created, err := sdk.Create(ctx, api.CreateRequest{Model: "join", Task: joinTask, MaxCost: 1.5})
	if err != nil {
		t.Fatal(err)
	}

	// bad_param: n out of range.
	_, err = sdk.Questions(ctx, created.ID, 0)
	expect(api.CodeBadParam, err)

	// budget_exhausted: two $1 labels against a $1.50 cap.
	item := json.RawMessage(`{"left":0,"right":0}`)
	_, err = sdk.Answers(ctx, created.ID, []api.Answer{
		{Item: item, Positive: true}, {Item: item, Positive: true},
	}, api.ReconcileNone)
	expect(api.CodeBudgetExhausted, err)

	// too_many_sessions: the cap is 2.
	uncapped, err := sdk.Create(ctx, api.CreateRequest{Model: "join", Task: joinTask})
	if err != nil {
		t.Fatal(err)
	}
	_, err = sdk.Create(ctx, api.CreateRequest{Model: "join", Task: joinTask})
	expect(api.CodeTooManySessions, err)

	// session_exists: resuming over a live id.
	snap, err := sdk.Snapshot(ctx, created.ID)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sdk.Resume(ctx, snap)
	expect(api.CodeSessionExists, err)

	// session_failed: contradictory labels across two batches, on the
	// session with no budget cap so the failure is genuinely version-space
	// inconsistency.
	if _, err := sdk.Answers(ctx, uncapped.ID, []api.Answer{{Item: item, Positive: false}}, api.ReconcileNone); err != nil {
		t.Fatal(err)
	}
	_, err = sdk.Answers(ctx, uncapped.ID, []api.Answer{{Item: item, Positive: true}}, api.ReconcileNone)
	expect(api.CodeSessionFailed, err)

	// bad_json: invalid body.
	rawExpect(api.CodeBadJSON, "/v1/sessions", "application/json", []byte(`{`), nil)

	// unsupported_media_type: non-JSON Content-Type.
	rawExpect(api.CodeUnsupportedMediaType, "/v1/sessions", "text/plain", []byte(`{}`), nil)

	// body_too_large: a body beyond the server's 4MB cap.
	huge := append([]byte(`{"task":"`), bytes.Repeat([]byte("x"), (4<<20)+1024)...)
	huge = append(huge, []byte(`"}`)...)
	rawExpect(api.CodeBodyTooLarge, "/v1/sessions", "application/json", huge, nil)

	// idempotency_conflict: one key, two bodies. A failed attempt releases
	// its key, so the first use must succeed — free a slot under the
	// 2-session cap and create with an explicit key.
	keyed := map[string]string{api.IdempotencyKeyHeader: "contract-key"}
	okBody, _ := json.Marshal(api.CreateRequest{Model: "join", Task: joinTask})
	if err := sdk.Delete(ctx, created.ID); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/sessions", bytes.NewReader(okBody))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(api.IdempotencyKeyHeader, "contract-key")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("keyed create: HTTP %d", resp.StatusCode)
	}
	otherBody, _ := json.Marshal(api.CreateRequest{Model: "path", Task: pathTask})
	rawExpect(api.CodeIdempotencyConflict, "/v1/sessions", "application/json", otherBody, keyed)

	// journal_unavailable: a dead journal turns every mutation into 503.
	deadMgr := session.NewManager(session.Config{Journal: &failingJournal{fail: 1 << 30}})
	deadTS := httptest.NewServer(server.New(deadMgr).Handler())
	t.Cleanup(deadTS.Close)
	_, err = sdkNoRetry(deadTS).Create(ctx, api.CreateRequest{Model: "join", Task: joinTask})
	expect(api.CodeJournalUnavailable, err)

	// overloaded: a draining server sheds new sessions with 503.
	drainSrv := server.New(session.NewManager(session.Config{}))
	drainSrv.Drain()
	drainTS := httptest.NewServer(drainSrv.Handler())
	t.Cleanup(drainTS.Close)
	_, err = sdkNoRetry(drainTS).Create(ctx, api.CreateRequest{Model: "join", Task: joinTask})
	expect(api.CodeOverloaded, err)

	// bad_body: a declared Content-Length the client never delivers makes
	// the server's body read fail mid-stream. Raw TCP, because no sane
	// client library sends this.
	func() {
		addr := ts.Listener.Addr().String()
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		fmt.Fprintf(conn, "POST /v1/sessions HTTP/1.1\r\nHost: %s\r\nContent-Type: application/json\r\nContent-Length: 4096\r\n\r\n{\"model\"", addr)
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		resp, err := http.ReadResponse(bufio.NewReader(conn), nil)
		if err != nil {
			t.Errorf("bad_body: reading truncated-request response: %v", err)
			return
		}
		defer resp.Body.Close()
		var er api.ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil || er.Error == nil {
			t.Errorf("bad_body: decoding envelope: %v", err)
			return
		}
		expect(api.CodeBadBody, er.Error)
	}()

	for _, code := range api.Codes {
		if !covered[code] {
			t.Errorf("stable error code %q was not exercised by the contract sweep", code)
		}
	}
}
