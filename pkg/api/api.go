// Package api defines the v1 wire protocol of the querylearn interactive
// learning service: every request and response body, the question/answer
// item encodings, session snapshots, and the structured error envelope with
// its stable machine-readable codes. Both sides of the wire share these
// types — internal/server marshals them, pkg/client unmarshals them, and
// internal/session aliases them as its own dialogue vocabulary — so the
// contract is defined exactly once.
//
// The package deliberately imports nothing beyond the standard library and
// nothing under internal/: it is the public, importable face of the service
// (`make api-check` builds an external module against it to keep that true).
//
// # Versioning
//
// All routes live under the /v1 prefix:
//
//	POST   /v1/sessions                   create a session from a task body
//	POST   /v1/sessions/resume            rehydrate a snapshotted session
//	GET    /v1/sessions                   paginated session list
//	GET    /v1/sessions/{id}              lifecycle status
//	GET    /v1/sessions/{id}/question     next informative item (or done)
//	GET    /v1/sessions/{id}/questions    up to n=k distinct informative items
//	POST   /v1/sessions/{id}/answers      batched labels, optional majority vote
//	GET    /v1/sessions/{id}/query        the learned hypothesis
//	GET    /v1/sessions/{id}/snapshot     persistable session state
//	DELETE /v1/sessions/{id}              evict
//
// The pre-v1 unversioned routes remain as thin aliases that answer
// identically but carry a "Deprecation: true" header and a Link to their
// /v1 successor; they accept lax request bodies (unknown fields ignored)
// for old clients, while /v1 rejects unknown fields.
//
// # Errors
//
// Failures are JSON envelopes with a stable code and a human message:
//
//	{"error": {"code": "session_not_found", "message": "..."}}
//
// The Code* constants enumerate every code the service emits; clients
// should switch on codes, never on message text.
//
// # Idempotency
//
// POST /v1/sessions and POST /v1/sessions/{id}/answers accept an
// Idempotency-Key header. Retrying a request with the same key and body
// replays the stored first response (marked Idempotency-Replayed: true)
// instead of re-executing, so a client that lost a response to a timeout
// can retry without double-creating a session or double-charging a batch
// of crowd labels. Reusing a key with a different body, or while the first
// attempt is still in flight, fails with code "idempotency_conflict".
// Stored responses are held in server memory for the lifetime of the
// process (a bounded FIFO window of recent keys): a retry that crosses a
// daemon restart, or arrives after thousands of newer keyed writes, may
// re-execute — bound retry loops to seconds, not hours.
package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"
)

// V1Prefix is the path prefix of the current stable API version.
const V1Prefix = "/v1"

// Header names of the protocol extensions.
const (
	// IdempotencyKeyHeader makes a POST create/answers request safely
	// retryable: the first 2xx response under a key is stored and replayed.
	IdempotencyKeyHeader = "Idempotency-Key"
	// IdempotencyReplayedHeader marks a response that was replayed from the
	// idempotency store rather than executed.
	IdempotencyReplayedHeader = "Idempotency-Replayed"
	// DeprecationHeader is set to "true" on responses served by a legacy
	// unversioned route; the Link header names the /v1 successor.
	DeprecationHeader = "Deprecation"
	// RetryAfterHeader accompanies 429 and 503 responses: the seconds a
	// well-behaved client should wait before retrying. The SDK honors it.
	RetryAfterHeader = "Retry-After"
	// DegradedHeader is set to "true" on every response while the service is
	// in degraded mode (journal unavailable): reads keep working, mutations
	// fail with 503, and /healthz carries the reason.
	DegradedHeader = "X-Querylearn-Degraded"
	// RequestIDHeader correlates one request across client, server, and
	// logs: the server echoes a client-supplied id or generates one, every
	// response carries it, error bodies repeat it as request_id, and
	// slow-request logs key on it. The SDK stamps a fresh id per logical
	// call, reused across its retries, so a stalled dialogue can be traced
	// end-to-end.
	RequestIDHeader = "X-Request-Id"
	// NodeHeader names the cluster node that answered. On a 307 redirect it
	// instead names the session's owner node the client should follow to;
	// the SDK uses it to maintain its session→node routing cache.
	NodeHeader = "X-Querylearn-Node"
)

// MaxQuestionBatch caps the n parameter of GET /v1/sessions/{id}/questions.
const MaxQuestionBatch = 64

// MaxListLimit caps the limit parameter of GET /v1/sessions.
const MaxListLimit = 1000

// Stable error codes. Every structured error the service emits carries
// exactly one of these.
const (
	// CodeBadBody: the request body could not be read.
	CodeBadBody = "bad_body"
	// CodeBadJSON: the request body is not valid JSON for the endpoint's
	// request type (on /v1 this includes unknown fields).
	CodeBadJSON = "bad_json"
	// CodeBodyTooLarge: the request body exceeds the service's size cap
	// (HTTP 413).
	CodeBodyTooLarge = "body_too_large"
	// CodeUnsupportedMediaType: a POST body without a JSON Content-Type
	// (HTTP 415).
	CodeUnsupportedMediaType = "unsupported_media_type"
	// CodeBadParam: a malformed query parameter (n, limit, page_token).
	CodeBadParam = "bad_param"
	// CodeBadRequest: a request the session layer rejected for any other
	// reason (unknown model, malformed task, malformed item, ...).
	CodeBadRequest = "bad_request"
	// CodeSessionNotFound: unknown or already-evicted session id.
	CodeSessionNotFound = "session_not_found"
	// CodeTooManySessions: the daemon's live-session cap is reached.
	CodeTooManySessions = "too_many_sessions"
	// CodeBudgetExhausted: the batch would exceed the session's crowd
	// budget (HTTP 402).
	CodeBudgetExhausted = "budget_exhausted"
	// CodeSessionFailed: the session's answers became inconsistent; no
	// hypothesis in the class fits them.
	CodeSessionFailed = "session_failed"
	// CodeSessionExists: a resume under an id that is still live.
	CodeSessionExists = "session_exists"
	// CodeJournalUnavailable: a server-side durability fault aborted the
	// mutation; the request did not take effect and may be retried (503).
	CodeJournalUnavailable = "journal_unavailable"
	// CodeIdempotencyConflict: an Idempotency-Key was reused with a
	// different request body, or while its first attempt is in flight.
	CodeIdempotencyConflict = "idempotency_conflict"
	// CodeOverloaded: the daemon shed the request — its in-flight admission
	// budget is spent (HTTP 429) or it is draining for shutdown (HTTP 503).
	// The request did not take effect; retry after the Retry-After delay.
	CodeOverloaded = "overloaded"
)

// Codes lists every stable error code, in documentation order. Contract
// tests iterate it to prove each code is reachable over the wire.
var Codes = []string{
	CodeBadBody, CodeBadJSON, CodeBodyTooLarge, CodeUnsupportedMediaType,
	CodeBadParam, CodeBadRequest, CodeSessionNotFound, CodeTooManySessions,
	CodeBudgetExhausted, CodeSessionFailed, CodeSessionExists,
	CodeJournalUnavailable, CodeIdempotencyConflict, CodeOverloaded,
}

// Error is the structured failure body. It implements error so SDK callers
// can errors.As it back out of a call and switch on Code.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// RequestID echoes the X-Request-Id the failing request carried, so an
	// error report can be matched to the server's logs and traces.
	RequestID string `json:"request_id,omitempty"`
	// Status is the HTTP status the error arrived with; filled by the
	// client, never serialized.
	Status int `json:"-"`
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

// ErrorResponse is the envelope every non-2xx response carries.
type ErrorResponse struct {
	Error *Error `json:"error"`
}

// IsCode reports whether err is (or wraps) an API *Error with the given
// stable code.
func IsCode(err error, code string) bool {
	var ae *Error
	return errors.As(err, &ae) && ae.Code == code
}

// Question is one item a learner wants labeled. Item is the model-specific
// wire encoding of the item; clients echo it back verbatim (or re-encode
// the same fields) when answering.
type Question struct {
	Model  string          `json:"model"`
	Item   json.RawMessage `json:"item"`
	Prompt string          `json:"prompt"`
	// Remaining counts the informative items still open at proposal time,
	// including the proposed ones — the client's progress bar.
	Remaining int `json:"remaining"`
}

// Answer is one label: the item a question encoded, and the verdict.
type Answer struct {
	Item     json.RawMessage `json:"item"`
	Positive bool            `json:"positive"`
}

// Hypothesis is a snapshot of the current best hypothesis of a session.
type Hypothesis struct {
	Model string `json:"model"`
	// Query renders the hypothesis in the model's native syntax (a twig
	// query, a join predicate, a path query, a multiplicity schema).
	Query string `json:"query"`
	// Converged is true when no informative item remains.
	Converged bool              `json:"converged"`
	Detail    map[string]string `json:"detail,omitempty"`
}

// Snapshot is the JSON-persistable state of a session mid-dialogue: the
// task source plus the answer log. Resuming rebuilds the learner and
// replays the log, which reproduces the version space exactly (learning is
// a pure function of task + answers).
type Snapshot struct {
	ID        string    `json:"id"`
	Model     string    `json:"model"`
	Task      string    `json:"task"`
	Answers   []Answer  `json:"answers,omitempty"`
	HITs      int       `json:"hits"`
	Cost      float64   `json:"cost"`
	MaxCost   float64   `json:"max_cost,omitempty"`
	CreatedAt time.Time `json:"created_at"`
	// Limits preserves the create request's session limits so a resumed
	// session rebuilds the identical question pool and version space.
	Limits *PathLimits `json:"limits,omitempty"`
	// AnswerKeys is the session's recent Idempotency-Key window (newest
	// last, bounded), persisted so a keyed answers retry that lands after a
	// failover — on a node that never saw the original request — is still
	// recognized as a replay instead of double-charging the batch.
	AnswerKeys []string `json:"answer_keys,omitempty"`
}

// Status is a session's lifecycle summary.
type Status struct {
	ID        string    `json:"id"`
	Model     string    `json:"model"`
	Answers   int       `json:"answers"`
	HITs      int       `json:"hits"`
	Cost      float64   `json:"cost"`
	MaxCost   float64   `json:"max_cost,omitempty"`
	CreatedAt time.Time `json:"created_at"`
	Failed    string    `json:"failed,omitempty"`
}

// PathLimits tunes a path-model session at creation. Zero fields inherit
// the server's defaults (configurable via querylearnd flags); non-zero
// fields may only tighten — a request above the server's own limit is
// rejected. The limits travel with the session's Snapshot so resuming
// reproduces the exact version space.
type PathLimits struct {
	// MaxNodes caps the client-supplied graph's node count. The engine's
	// version space is pool-projected (memory proportional to the question
	// pool, not n²), so the server default is generous — one million nodes
	// unless the daemon lowers it.
	MaxNodes int `json:"max_nodes,omitempty"`
	// PoolLimit caps the candidate question pool's pair count (server
	// default 2000). Session memory and creation time scale with it.
	PoolLimit int `json:"pool_limit,omitempty"`
	// PoolMaxLen caps the shortest-path length of pool pairs (server
	// default 5 hops).
	PoolMaxLen int `json:"pool_max_len,omitempty"`
}

// CreateRequest is the POST /v1/sessions body.
type CreateRequest struct {
	// Model names the hypothesis class: "twig", "join", "path" or "schema".
	Model string `json:"model"`
	// Task is a task-file body in cmd/querylearn's line format; its
	// examples seed the session.
	Task string `json:"task"`
	// MaxCost caps the session's crowd spend in dollars (0 = no cap).
	MaxCost float64 `json:"max_cost,omitempty"`
	// Limits optionally tightens the path-model session limits. The field
	// is validated against the server's caps for every model (a value above
	// a cap is a 400 regardless of Model), but only path sessions consume
	// it.
	Limits *PathLimits `json:"limits,omitempty"`
}

// CreateResponse echoes the registered session (also the resume response).
type CreateResponse struct {
	ID    string `json:"id"`
	Model string `json:"model"`
}

// Reconcile modes for batched answers.
const (
	// ReconcileNone applies every label in order.
	ReconcileNone = ""
	// ReconcileMajority groups repeated labels of one item as crowd votes
	// and applies each item's majority verdict once. Ties are rejected.
	ReconcileMajority = "majority"
)

// AnswersRequest is the POST /v1/sessions/{id}/answers body.
type AnswersRequest struct {
	Answers []Answer `json:"answers"`
	// Reconcile selects batch semantics: ReconcileNone applies labels in
	// order, ReconcileMajority votes per item.
	Reconcile string `json:"reconcile,omitempty"`
}

// AnswerResult reports what a batch of labels did to the session.
type AnswerResult struct {
	// Applied counts the answers recorded into the version space (after
	// majority reconciliation, one per distinct item).
	Applied int `json:"applied"`
	// HITs and Cost account every submitted label as one paid task.
	HITs int     `json:"hits"`
	Cost float64 `json:"cost"`
	// Remaining counts informative items left; Done means converged.
	Remaining int  `json:"remaining"`
	Done      bool `json:"done"`
}

// QuestionResponse wraps GET /v1/sessions/{id}/question: either done, or
// the next question.
type QuestionResponse struct {
	Done     bool      `json:"done"`
	Question *Question `json:"question,omitempty"`
}

// QuestionsResponse wraps GET /v1/sessions/{id}/questions?n=k: up to k
// pairwise-distinct informative items for parallel crowd dispatch. Done is
// true exactly when Questions is empty.
type QuestionsResponse struct {
	Done      bool       `json:"done"`
	Questions []Question `json:"questions,omitempty"`
}

// SessionList is the GET /v1/sessions page: statuses in ascending id
// order. NextPageToken, when non-empty, fetches the following page via
// ?page_token=.
type SessionList struct {
	Sessions      []Status `json:"sessions"`
	NextPageToken string   `json:"next_page_token,omitempty"`
}
